"""CLI tests (direct main() invocation; no subprocesses needed)."""

import pytest

from repro.cli import main


class TestRewrite:
    def test_figure1(self, capsys):
        code = main(
            [
                "rewrite",
                "--query", "a.(b.a+c)*",
                "--view", "e1=a",
                "--view", "e2=a.c*.b",
                "--view", "e3=c",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rewriting: e2*.e1.e3*" in out
        assert "exact: True" in out

    def test_inexact_reports_witness(self, capsys):
        main(
            [
                "rewrite",
                "--query", "a.(b.a+c)*",
                "--view", "e1=a",
                "--view", "e2=a.c*.b",
            ]
        )
        out = capsys.readouterr().out
        assert "exact: False" in out
        assert "missed query word:" in out

    def test_partial_search(self, capsys):
        main(
            [
                "rewrite",
                "--query", "a.(b+c)",
                "--view", "q1=a",
                "--view", "q2=b",
                "--partial",
            ]
        )
        out = capsys.readouterr().out
        assert "add elementary views for c" in out

    def test_dot_output(self, capsys):
        main(
            ["rewrite", "--query", "a", "--view", "e1=a", "--dot"]
        )
        out = capsys.readouterr().out
        assert "digraph rewriting" in out

    def test_bad_view_definition(self):
        with pytest.raises(SystemExit):
            main(["rewrite", "--query", "a", "--view", "nonsense"])


class TestRewriteBatch:
    VIEWS = ["--view", "e1=a", "--view", "e2=a.c*.b", "--view", "e3=c"]

    def test_batch_file(self, tmp_path, capsys):
        batch = tmp_path / "queries.txt"
        batch.write_text("a.(b.a+c)*\n# a comment\n\n(a.c*.b)*\nd\n")
        code = main(["rewrite", "--batch", str(batch), *self.VIEWS])
        captured = capsys.readouterr()
        assert code == 0
        assert "query: a.(b.a+c)*" in captured.out
        assert "rewriting: e2*.e1.e3*" in captured.out
        assert "query: d" in captured.out
        assert "empty: True" in captured.out
        assert "3 queries, 2 nonempty rewritings" in captured.err

    def test_repeated_query_flags_run_as_batch(self, capsys):
        code = main(
            ["rewrite", "--query", "a", "--query", "c", *self.VIEWS]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "query: a" in out and "query: c" in out

    def test_batch_rejects_partial_flag(self, tmp_path):
        batch = tmp_path / "queries.txt"
        batch.write_text("a\nc\n")
        with pytest.raises(SystemExit):
            main(["rewrite", "--batch", str(batch), "--partial", *self.VIEWS])

    def test_no_queries_at_all_rejected(self):
        with pytest.raises(SystemExit):
            main(["rewrite", "--view", "e1=a"])


class TestCheck:
    def test_nonempty(self, capsys):
        code = main(["check", "--query", "a*", "--view", "e1=a"])
        assert code == 0
        assert "nonempty" in capsys.readouterr().out

    def test_empty_sets_exit_code(self, capsys):
        code = main(["check", "--query", "a", "--view", "e1=b"])
        assert code == 1
        assert "empty" in capsys.readouterr().out

    def test_epsilon_witness_rendering(self, capsys):
        code = main(["check", "--query", "a*", "--view", "e1=b"])
        assert code == 0
        assert "(empty word)" in capsys.readouterr().out


class TestEval:
    def test_evaluates_graph_file(self, tmp_path, capsys):
        graph = tmp_path / "edges.tsv"
        graph.write_text("x\ta\ty\ny\tb\tz\n# comment\n\n")
        code = main(["eval", "--graph", str(graph), "--query", "a.b"])
        captured = capsys.readouterr()
        assert code == 0
        assert "x\tz" in captured.out
        assert "1 answers" in captured.err

    def test_malformed_line_rejected(self, tmp_path):
        graph = tmp_path / "bad.tsv"
        graph.write_text("only two\tfields\n")
        with pytest.raises(SystemExit):
            main(["eval", "--graph", str(graph), "--query", "a"])

    def test_naive_engine_agrees(self, tmp_path, capsys):
        graph = tmp_path / "edges.tsv"
        graph.write_text("x\ta\ty\ny\tb\tz\nz\ta\tx\n")
        main(["eval", "--graph", str(graph), "--query", "a.b*"])
        fast = capsys.readouterr().out
        main(["eval", "--graph", str(graph), "--query", "a.b*", "--naive"])
        naive = capsys.readouterr().out
        assert fast == naive

    def test_single_source(self, tmp_path, capsys):
        graph = tmp_path / "edges.tsv"
        graph.write_text("x\ta\ty\ny\tb\tz\n")
        code = main(
            ["eval", "--graph", str(graph), "--query", "a.b", "--source", "x"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "x\tz" in captured.out

    def test_single_source_unknown_node(self, tmp_path):
        graph = tmp_path / "edges.tsv"
        graph.write_text("x\ta\ty\n")
        with pytest.raises(SystemExit):
            main(
                ["eval", "--graph", str(graph), "--query", "a", "--source", "q"]
            )

    def test_pair_decision_exit_codes(self, tmp_path, capsys):
        graph = tmp_path / "edges.tsv"
        graph.write_text("x\ta\ty\ny\tb\tz\n")
        assert (
            main(
                ["eval", "--graph", str(graph), "--query", "a.b", "--pair", "x", "z"]
            )
            == 0
        )
        assert "answer" in capsys.readouterr().out
        assert (
            main(
                ["eval", "--graph", str(graph), "--query", "b", "--pair", "x", "z"]
            )
            == 1
        )
        assert "no answer" in capsys.readouterr().out


class TestAnswer:
    @pytest.fixture
    def tuples(self, tmp_path):
        path = tmp_path / "tuples.tsv"
        path.write_text("q1\tu\tv\nq1\tw\tv\nq2\tv\tz\n")
        return str(path)

    def test_all_pairs_from_extensions(self, tuples, capsys):
        code = main(
            [
                "answer",
                "--query", "a.b",
                "--view", "q1=a",
                "--view", "q2=b",
                "--extensions", tuples,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "exact: True" in out
        assert "u\tz" in out and "w\tz" in out

    def test_single_source_and_pair_modes(self, tuples, capsys):
        main(
            [
                "answer",
                "--query", "a.b",
                "--view", "q1=a",
                "--view", "q2=b",
                "--extensions", tuples,
                "--source", "u",
            ]
        )
        assert "u\tz" in capsys.readouterr().out
        assert (
            main(
                [
                    "answer",
                    "--query", "a.b",
                    "--view", "q1=a",
                    "--view", "q2=b",
                    "--extensions", tuples,
                    "--pair", "u", "v",
                ]
            )
            == 1
        )
        assert "no answer" in capsys.readouterr().out

    def test_stats_prints_serving_counters_as_json_on_stderr(
        self, tuples, capsys
    ):
        import json

        code = main(
            [
                "answer",
                "--query", "a.b",
                "--query", "a",
                "--view", "q1=a",
                "--view", "q2=b",
                "--extensions", tuples,
                "--stats",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "u\tz" in captured.out  # answers untouched on stdout
        report = json.loads(captured.err.splitlines()[-1])
        assert report["store"]["tuples"] == 3
        assert report["store"]["version"] >= 1
        assert [entry["query"] for entry in report["sessions"]] == ["a.b", "a"]
        for entry in report["sessions"]:
            assert entry["stats"]["requests"] == 1
            assert entry["stats"]["full_recomputes"] == 1
            assert entry["stats"]["incremental_updates"] == 0
        assert report["compile_cache"]["misses"] >= 1
        assert report["plan_cache"]["built"] == 2

    def test_stats_with_pair_mode(self, tuples, capsys):
        import json

        code = main(
            [
                "answer",
                "--query", "a.b",
                "--view", "q1=a",
                "--view", "q2=b",
                "--extensions", tuples,
                "--pair", "u", "z",
                "--stats",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        report = json.loads(captured.err.splitlines()[-1])
        assert report["sessions"][0]["stats"]["requests"] == 1

    def test_plan_cache_persists_between_invocations(
        self, tuples, tmp_path, capsys
    ):
        plan_dir = tmp_path / "plans"
        args = [
            "answer",
            "--query", "a.b",
            "--view", "q1=a",
            "--view", "q2=b",
            "--extensions", tuples,
            "--plan-cache", str(plan_dir),
        ]
        assert main(args) == 0
        saved = list(plan_dir.glob("*.json"))
        assert len(saved) == 1
        first = capsys.readouterr().out
        assert main(args) == 0  # second run loads the saved plan
        assert capsys.readouterr().out == first

    def test_unknown_view_in_extensions_rejected(self, tmp_path):
        path = tmp_path / "tuples.tsv"
        path.write_text("zzz\tu\tv\n")
        with pytest.raises(SystemExit, match="undefined views"):
            main(
                [
                    "answer",
                    "--query", "a",
                    "--view", "q1=a",
                    "--extensions", str(path),
                ]
            )

    def test_malformed_extension_line_rejected(self, tmp_path):
        path = tmp_path / "tuples.tsv"
        path.write_text("q1\tonly-two-fields\n")
        with pytest.raises(SystemExit, match="3 tab-separated"):
            main(
                [
                    "answer",
                    "--query", "a",
                    "--view", "q1=a",
                    "--extensions", str(path),
                ]
            )


class TestAnswerSharded:
    @pytest.fixture
    def tuples(self, tmp_path):
        path = tmp_path / "tuples.tsv"
        path.write_text("q1\tu\tv\nq1\tw\tv\nq2\tv\tz\n")
        return str(path)

    BASE = ["answer", "--query", "a.b", "--view", "q1=a", "--view", "q2=b"]

    def test_shards_and_workers_give_identical_answers(self, tuples, capsys):
        code = main([*self.BASE, "--extensions", tuples])
        plain = capsys.readouterr().out
        assert code == 0
        code = main(
            [*self.BASE, "--extensions", tuples, "--shards", "3", "--workers", "2"]
        )
        sharded = capsys.readouterr().out
        assert code == 0
        assert sharded == plain

    def test_sharded_pair_mode(self, tuples, capsys):
        code = main(
            [*self.BASE, "--extensions", tuples, "--shards", "4", "--pair", "u", "z"]
        )
        assert code == 0
        assert "answer" in capsys.readouterr().out

    def test_invalid_shard_and_worker_counts_rejected(self, tuples):
        with pytest.raises(SystemExit, match="--shards"):
            main([*self.BASE, "--extensions", tuples, "--shards", "0"])
        with pytest.raises(SystemExit, match="--workers"):
            main([*self.BASE, "--extensions", tuples, "--workers", "0"])


class TestWorkload:
    def test_graph_tsv_feeds_eval(self, tmp_path, capsys):
        graph = tmp_path / "graph.tsv"
        code = main(
            [
                "workload",
                "--family", "grid",
                "--seed", "7",
                "--edges", "24",
                "--graph-out", str(graph),
            ]
        )
        err = capsys.readouterr().err
        assert code == 0
        assert "grid seed=7" in err
        # The emitted TSV is directly consumable by `repro eval`.
        code = main(["eval", "--graph", str(graph), "--query", "r.d"])
        captured = capsys.readouterr()
        assert code == 0
        assert "answers" in captured.err

    def test_stdout_graph_queries_and_signature(self, capsys):
        code = main(
            [
                "workload",
                "--family", "chain",
                "--seed", "3",
                "--edges", "5",
                "--num-queries", "2",
                "--signature",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert len([l for l in captured.out.splitlines() if "\t" in l]) == 5
        assert sum(l.startswith("# query: ") for l in captured.out.splitlines()) == 2
        assert "# signature: " in captured.err

    def test_queries_out_file_feeds_rewrite_batch(self, tmp_path, capsys):
        graph = tmp_path / "graph.tsv"
        queries = tmp_path / "queries.txt"
        main(
            [
                "workload",
                "--family", "scale_free",
                "--seed", "1",
                "--edges", "30",
                "--graph-out", str(graph),
                "--num-queries", "3",
                "--queries-out", str(queries),
            ]
        )
        capsys.readouterr()
        assert len(queries.read_text().splitlines()) == 3
        code = main(
            [
                "rewrite",
                "--batch", str(queries),
                "--view", "v_a=a",
                "--view", "v_b=b",
                "--view", "v_c=c",
            ]
        )
        assert code == 0
        assert "3 queries" in capsys.readouterr().err

    def test_unknown_family_and_bad_edges_rejected(self):
        with pytest.raises(SystemExit, match="unknown --family"):
            main(["workload", "--family", "torus"])
        with pytest.raises(SystemExit, match="--edges"):
            main(["workload", "--family", "chain", "--edges", "0"])

    def test_queries_out_without_num_queries_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="--num-queries"):
            main(
                [
                    "workload",
                    "--family", "chain",
                    "--queries-out", str(tmp_path / "q.txt"),
                ]
            )


class TestServeBench:
    def test_tiny_run_reports_speedups(self, capsys):
        code = main(
            [
                "serve-bench",
                "--nodes", "40",
                "--edges", "120",
                "--queries", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cold rewrite+evaluate loop" in out
        assert "steady state" in out


class TestServe:
    """The serve verb needs a subprocess: it blocks until shutdown."""

    def test_serves_http_until_shutdown(self):
        import json
        import os
        import subprocess
        import sys
        import urllib.request
        from pathlib import Path

        src = Path(__file__).resolve().parent.parent / "src"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--workload-tenant", "alpha=chain:3:40",
                "--workload-tenant", "beta=grid:5:40",
            ],
            env={**os.environ, "PYTHONPATH": str(src)},
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "serving 2 tenant(s) on http://" in banner
            url = banner.strip().rsplit(" ", 1)[-1]
            with urllib.request.urlopen(f"{url}/health", timeout=30) as resp:
                health = json.load(resp)
            assert set(health["tenants"]) == {"alpha", "beta"}
            request = urllib.request.Request(
                f"{url}/tenants/alpha/query",
                data=json.dumps({"query": "a.b"}).encode(),
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=60) as resp:
                body = json.load(resp)
            assert body["version"] == health["tenants"]["alpha"]["version"]
            assert isinstance(body["answers"], list)
            request = urllib.request.Request(
                f"{url}/shutdown", data=b"{}", method="POST"
            )
            with urllib.request.urlopen(request, timeout=30) as resp:
                assert json.load(resp)["status"] == "shutting-down"
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    def test_bad_tenant_specs_rejected(self):
        with pytest.raises(SystemExit, match="expected NAME=FAMILY:SEED:EDGES"):
            main(["serve", "--workload-tenant", "nonsense"])
        with pytest.raises(SystemExit, match="must be integers"):
            main(["serve", "--workload-tenant", "t=chain:x:40"])
        with pytest.raises(SystemExit, match="unknown family"):
            main(["serve", "--workload-tenant", "t=blob:1:40"])
        with pytest.raises(SystemExit, match="duplicate tenant"):
            main(
                [
                    "serve",
                    "--workload-tenant", "t=chain:1:40",
                    "--workload-tenant", "t=grid:1:40",
                ]
            )


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_module_entry_point_importable(self):
        import repro.__main__  # noqa: F401
