"""Seeded random generators for regexes, words, and automata."""

import random

from repro.automata.random_gen import random_dfa, random_nfa
from repro.regex.ast import Regex
from repro.regex.random_gen import random_regex, random_word


class TestRandomRegex:
    def test_reproducible(self):
        left = random_regex(random.Random(1), "abc", max_size=10)
        right = random_regex(random.Random(1), "abc", max_size=10)
        assert left == right

    def test_respects_alphabet(self):
        rng = random.Random(2)
        for _ in range(20):
            expr = random_regex(rng, "xy", max_size=8)
            assert expr.alphabet() <= {"x", "y"}

    def test_size_bounded(self):
        rng = random.Random(3)
        for _ in range(20):
            expr = random_regex(rng, "ab", max_size=6)
            assert isinstance(expr, Regex)
            # leaves bounded by budget; tree size at most ~2x leaves
            assert expr.size() <= 2 * 6 + 1

    def test_empty_alphabet_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            random_regex(random.Random(0), [])


class TestRandomWord:
    def test_length_bound(self):
        rng = random.Random(4)
        for _ in range(50):
            word = random_word(rng, "ab", max_length=5)
            assert len(word) <= 5
            assert set(word) <= {"a", "b"}

    def test_reproducible(self):
        assert random_word(random.Random(9), "ab") == random_word(
            random.Random(9), "ab"
        )


class TestRandomAutomata:
    def test_random_nfa_valid_and_reproducible(self):
        left = random_nfa(random.Random(5), 6, "ab")
        right = random_nfa(random.Random(5), 6, "ab")
        assert left.num_states == 6
        assert left.finals  # never empty
        assert sorted(left.iter_transitions(), key=repr) == sorted(
            right.iter_transitions(), key=repr
        )

    def test_random_dfa_total(self):
        dfa = random_dfa(random.Random(6), 5, "abc")
        assert dfa.is_total()
        assert dfa.finals

    def test_bad_sizes_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            random_nfa(random.Random(0), 0, "a")
        with pytest.raises(ValueError):
            random_dfa(random.Random(0), 0, "a")
