"""Unit tests for the regex AST and its smart constructors."""

import pytest

from repro.regex.ast import (
    EMPTY,
    EPSILON,
    Concat,
    Star,
    Symbol,
    Union,
    any_of,
    bounded_repeat,
    concat,
    option,
    plus,
    power,
    star,
    sym,
    union,
    word,
)


class TestSmartConstructors:
    def test_concat_flattens(self):
        expr = concat(concat(sym("a"), sym("b")), sym("c"))
        assert isinstance(expr, Concat)
        assert len(expr.parts) == 3

    def test_concat_epsilon_identity(self):
        assert concat(EPSILON, sym("a")) == sym("a")
        assert concat(sym("a"), EPSILON) == sym("a")
        assert concat(EPSILON, EPSILON) == EPSILON

    def test_concat_empty_annihilates(self):
        assert concat(sym("a"), EMPTY, sym("b")) == EMPTY

    def test_concat_no_args_is_epsilon(self):
        assert concat() == EPSILON

    def test_union_flattens_and_dedups(self):
        expr = union(union(sym("a"), sym("b")), sym("a"))
        assert isinstance(expr, Union)
        assert expr.parts == (sym("a"), sym("b"))

    def test_union_empty_identity(self):
        assert union(EMPTY, sym("a")) == sym("a")
        assert union(EMPTY, EMPTY) == EMPTY

    def test_union_epsilon_absorbed_by_star(self):
        expr = union(EPSILON, star(sym("a")))
        assert expr == star(sym("a"))

    def test_union_preserves_first_occurrence_order(self):
        expr = union(sym("b"), sym("a"), sym("b"))
        assert expr.parts == (sym("b"), sym("a"))

    def test_star_of_empty_and_epsilon(self):
        assert star(EMPTY) == EPSILON
        assert star(EPSILON) == EPSILON

    def test_star_idempotent(self):
        inner = star(sym("a"))
        assert star(inner) == inner

    def test_star_drops_epsilon_alternative(self):
        expr = star(union(EPSILON, sym("a")))
        assert expr == star(sym("a"))

    def test_plus_and_option(self):
        assert plus(sym("a")) == concat(sym("a"), star(sym("a")))
        assert option(sym("a")) == union(EPSILON, sym("a"))

    def test_power(self):
        assert power(sym("a"), 0) == EPSILON
        assert power(sym("a"), 3) == concat(sym("a"), sym("a"), sym("a"))
        with pytest.raises(ValueError):
            power(sym("a"), -1)

    def test_word_and_any_of(self):
        assert word("ab") == concat(sym("a"), sym("b"))
        assert word("") == EPSILON
        assert any_of("ab") == union(sym("a"), sym("b"))

    def test_bounded_repeat(self):
        expr = bounded_repeat(sym("a"), 0, 2)
        assert expr == union(EPSILON, sym("a"), concat(sym("a"), sym("a")))
        with pytest.raises(ValueError):
            bounded_repeat(sym("a"), 2, 1)

    def test_sym_rejects_regex(self):
        with pytest.raises(TypeError):
            sym(sym("a"))

    def test_constructors_reject_non_regex(self):
        with pytest.raises(TypeError):
            concat(sym("a"), "b")  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            union("a")  # type: ignore[arg-type]


class TestStructure:
    def test_alphabet(self):
        expr = concat(sym("a"), star(union(sym("b"), sym("a"))))
        assert expr.alphabet() == frozenset({"a", "b"})

    def test_alphabet_of_constants(self):
        assert EMPTY.alphabet() == frozenset()
        assert EPSILON.alphabet() == frozenset()

    def test_size_counts_nodes(self):
        assert sym("a").size() == 1
        assert EPSILON.size() == 1
        expr = union(sym("a"), concat(sym("b"), sym("c")))
        assert expr.size() == 1 + 1 + (1 + 1 + 1)

    def test_hashable_and_equal(self):
        left = concat(sym("a"), star(sym("b")))
        right = concat(sym("a"), star(sym("b")))
        assert left == right
        assert hash(left) == hash(right)
        assert len({left, right}) == 1

    def test_non_string_symbols(self):
        expr = union(sym(1), sym((2, 3)))
        assert expr.alphabet() == frozenset({1, (2, 3)})

    def test_operator_sugar(self):
        assert sym("a") + sym("b") == union(sym("a"), sym("b"))
        assert sym("a") * sym("b") == concat(sym("a"), sym("b"))
        assert sym("a").star() == star(sym("a"))

    def test_predicates(self):
        assert EMPTY.is_empty_set()
        assert EPSILON.is_epsilon()
        assert not sym("a").is_empty_set()

    def test_iter_symbols_with_repetition(self):
        expr = concat(sym("a"), sym("a"), sym("b"))
        assert list(expr.iter_symbols()) == ["a", "a", "b"]

    def test_star_node_accessors(self):
        node = star(sym("a"))
        assert isinstance(node, Star)
        assert node.inner == sym("a")
        assert isinstance(sym("x"), Symbol)
