"""Simplifier tests: rules fire, and the language is always preserved."""

from hypothesis import given, settings

from repro.automata.containment import are_equivalent
from repro.automata.thompson import to_nfa
from repro.regex.ast import EPSILON, Concat, concat, star, sym, union, word
from repro.regex.simplify import simplify

from ..conftest import regex_strategy


class TestRules:
    def test_union_idempotence(self):
        assert simplify(union(sym("a"), sym("a"))) == sym("a")

    def test_star_subsumes_body(self):
        assert simplify(union(sym("a"), star(sym("a")))) == star(sym("a"))

    def test_star_subsumes_epsilon(self):
        assert simplify(union(EPSILON, star(sym("a")))) == star(sym("a"))

    def test_unrolled_star_folds(self):
        # eps + a.a* == a*
        unrolled = union(EPSILON, concat(sym("a"), star(sym("a"))))
        assert simplify(unrolled) == star(sym("a"))

    def test_mirror_unrolled_star_folds(self):
        unrolled = union(EPSILON, concat(star(sym("a")), sym("a")))
        assert simplify(unrolled) == star(sym("a"))

    def test_adjacent_stars_collapse(self):
        expr = concat(star(sym("a")), star(sym("a")), sym("b"))
        assert simplify(expr) == concat(star(sym("a")), sym("b"))

    def test_unrolled_star_with_other_alternatives(self):
        expr = union(EPSILON, concat(sym("a"), star(sym("a"))), sym("b"))
        result = simplify(expr)
        assert result == union(star(sym("a")), sym("b"))

    def test_fixed_point_reached(self):
        expr = union(
            EPSILON,
            concat(
                union(sym("a"), sym("a")),
                star(union(sym("a"), sym("a"))),
            ),
        )
        assert simplify(expr) == star(sym("a"))

    def test_leaves_irreducible_untouched(self):
        expr = concat(sym("a"), union(sym("b"), sym("c")))
        assert simplify(expr) == expr

    def test_deep_nesting(self):
        expr = star(union(concat(word("ab"), star(word("ab"))), EPSILON))
        # (eps + ab.(ab)*)* == ((ab)*)* == (ab)*
        assert simplify(expr) == star(word("ab"))


class TestSoundness:
    @given(regex_strategy(max_leaves=8))
    @settings(max_examples=60, deadline=None)
    def test_simplify_preserves_language(self, expr):
        simplified = simplify(expr)
        assert are_equivalent(to_nfa(expr), to_nfa(simplified))

    @given(regex_strategy(max_leaves=8))
    @settings(max_examples=60, deadline=None)
    def test_simplify_never_grows(self, expr):
        assert simplify(expr).size() <= expr.size()

    def test_simplify_is_idempotent_on_examples(self):
        samples = [
            union(EPSILON, concat(sym("a"), star(sym("a")))),
            concat(star(sym("a")), star(sym("a"))),
            union(sym("a"), star(sym("a")), sym("b")),
        ]
        for expr in samples:
            once = simplify(expr)
            assert simplify(once) == once
