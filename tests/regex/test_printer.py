"""Printer tests: paper notation, parenthesization, symbol quoting."""

from repro.regex.ast import EMPTY, EPSILON, concat, star, sym, union, word
from repro.regex.printer import symbol_to_string, to_string


class TestNotation:
    def test_constants(self):
        assert to_string(EMPTY) == "%empty"
        assert to_string(EPSILON) == "%eps"

    def test_symbol(self):
        assert to_string(sym("a")) == "a"
        assert to_string(sym("restaurant")) == "restaurant"

    def test_concat_uses_dots(self):
        assert to_string(word("abc")) == "a.b.c"

    def test_union_uses_plus(self):
        assert to_string(union(sym("a"), sym("b"))) == "a+b"

    def test_star_postfix(self):
        assert to_string(star(sym("a"))) == "a*"


class TestParenthesization:
    def test_union_inside_concat(self):
        expr = concat(sym("a"), union(sym("b"), sym("c")))
        assert to_string(expr) == "a.(b+c)"

    def test_concat_inside_star(self):
        expr = star(concat(sym("a"), sym("b")))
        assert to_string(expr) == "(a.b)*"

    def test_union_inside_star(self):
        expr = star(union(sym("a"), sym("b")))
        assert to_string(expr) == "(a+b)*"

    def test_no_redundant_parens(self):
        expr = union(concat(sym("a"), sym("b")), sym("c"))
        assert to_string(expr) == "a.b+c"

    def test_nested_union_keeps_grouping(self):
        # Unions are flattened by the smart constructor, so explicitly
        # build a nested node to check the printer's precedence handling.
        from repro.regex.ast import Union

        nested = Union((sym("a"), Union((sym("b"), sym("c")))))
        assert to_string(nested) == "a+(b+c)"

    def test_paper_figure1_rewriting(self):
        expr = concat(star(sym("e2")), sym("e1"), star(sym("e3")))
        assert to_string(expr) == "e2*.e1.e3*"


class TestQuoting:
    def test_identifier_like_unquoted(self):
        assert symbol_to_string("a1_b$") == "a1_b$"

    def test_space_quoted(self):
        assert symbol_to_string("two words") == "'two words'"

    def test_quote_escaped(self):
        assert symbol_to_string("it's") == "'it\\'s'"

    def test_non_string_symbols_render(self):
        assert symbol_to_string(42) == "42"
        assert symbol_to_string(("x", 1)) == "'(\\'x\\', 1)'"

    def test_empty_string_symbol_quoted(self):
        assert symbol_to_string("") == "''"
