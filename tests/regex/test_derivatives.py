"""Brzozowski derivatives: unit tests plus cross-validation against automata."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.thompson import to_nfa
from repro.regex.ast import EMPTY, EPSILON, concat, star, sym, union, word
from repro.regex.derivatives import (
    derivative,
    derivative_closure,
    matches,
    nullable,
    word_derivative,
)

from ..conftest import ALPHABET, regex_strategy, words_up_to


class TestNullable:
    def test_constants(self):
        assert nullable(EPSILON)
        assert not nullable(EMPTY)
        assert not nullable(sym("a"))

    def test_star_always_nullable(self):
        assert nullable(star(sym("a")))

    def test_concat_needs_all(self):
        assert not nullable(concat(sym("a"), star(sym("b"))))
        assert nullable(concat(star(sym("a")), star(sym("b"))))

    def test_union_needs_one(self):
        assert nullable(union(sym("a"), EPSILON))
        assert not nullable(union(sym("a"), sym("b")))


class TestDerivative:
    def test_symbol(self):
        assert derivative(sym("a"), "a") == EPSILON
        assert derivative(sym("a"), "b") == EMPTY

    def test_constants(self):
        assert derivative(EPSILON, "a") == EMPTY
        assert derivative(EMPTY, "a") == EMPTY

    def test_star_unrolls(self):
        expr = star(sym("a"))
        assert derivative(expr, "a") == expr

    def test_concat_with_nullable_head(self):
        expr = concat(star(sym("a")), sym("b"))
        # D_b(a*b) must contain epsilon via the nullable head.
        assert nullable(derivative(expr, "b"))

    def test_word_derivative_short_circuits(self):
        expr = word("abc")
        assert word_derivative(expr, "abc") == EPSILON
        assert word_derivative(expr, "abx") == EMPTY

    def test_matches(self):
        expr = concat(sym("a"), star(union(word("ba"), sym("c"))))
        assert matches(expr, tuple("a"))
        assert matches(expr, tuple("abacc"))
        assert not matches(expr, tuple("ab"))
        assert not matches(expr, ())


class TestDerivativeClosure:
    def test_closure_is_finite_and_transition_complete(self):
        expr = concat(sym("a"), star(union(word("ba"), sym("c"))))
        table = derivative_closure(expr, "abc")
        assert expr in table
        for row in table.values():
            for successor in row.values():
                assert successor in table

    def test_closure_limit(self):
        import pytest

        with pytest.raises(RuntimeError):
            derivative_closure(word("abcabc"), "abc", limit=2)


class TestAgainstAutomata:
    """Derivatives and Thompson+NFA are independent implementations; their
    membership verdicts must agree everywhere."""

    @given(regex_strategy(max_leaves=6))
    @settings(max_examples=60, deadline=None)
    def test_membership_agrees_on_short_words(self, expr):
        nfa = to_nfa(expr)
        for w in words_up_to(ALPHABET, 3):
            assert matches(expr, w) == nfa.accepts(w), (expr, w)

    @given(regex_strategy(max_leaves=5), st.lists(st.sampled_from(ALPHABET), max_size=6))
    @settings(max_examples=80, deadline=None)
    def test_membership_agrees_on_random_words(self, expr, letters):
        w = tuple(letters)
        assert matches(expr, w) == to_nfa(expr).accepts(w)
