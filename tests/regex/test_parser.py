"""Parser tests: paper syntax, precedence, errors, and round-tripping."""

import pytest
from hypothesis import given

from repro.regex.ast import EMPTY, EPSILON, concat, option, star, sym, union
from repro.regex.parser import RegexSyntaxError, parse
from repro.regex.printer import to_string

from ..conftest import regex_strategy


class TestBasics:
    def test_single_symbol(self):
        assert parse("a") == sym("a")

    def test_multichar_symbol_is_one_token(self):
        # The paper's examples use named symbols like `rome`.
        assert parse("rome") == sym("rome")

    def test_explicit_concat(self):
        assert parse("a.b") == concat(sym("a"), sym("b"))

    def test_juxtaposition_concat(self):
        assert parse("a b") == concat(sym("a"), sym("b"))
        assert parse("a(b)") == concat(sym("a"), sym("b"))

    def test_union(self):
        assert parse("a+b") == union(sym("a"), sym("b"))

    def test_star_and_option(self):
        assert parse("a*") == star(sym("a"))
        assert parse("a?") == option(sym("a"))

    def test_epsilon_and_empty(self):
        assert parse("%eps") == EPSILON
        assert parse("%empty") == EMPTY
        assert parse("ε") == EPSILON
        assert parse("∅") == EMPTY

    def test_quoted_symbols(self):
        assert parse("'hello world'") == sym("hello world")
        assert parse(r"'it\'s'") == sym("it's")

    def test_middle_dot(self):
        assert parse("a·b") == parse("a.b")


class TestPrecedence:
    def test_star_binds_tighter_than_concat(self):
        assert parse("a.b*") == concat(sym("a"), star(sym("b")))

    def test_concat_binds_tighter_than_union(self):
        assert parse("a.b+c") == union(concat(sym("a"), sym("b")), sym("c"))

    def test_parentheses(self):
        assert parse("a.(b+c)") == concat(sym("a"), union(sym("b"), sym("c")))
        assert parse("(a.b)*") == star(concat(sym("a"), sym("b")))

    def test_paper_example_22(self):
        # E0 = a.(b.a + c)* from Example 2.2
        expected = concat(
            sym("a"), star(union(concat(sym("b"), sym("a")), sym("c")))
        )
        assert parse("a.(b.a+c)*") == expected

    def test_double_postfix(self):
        assert parse("a*?") == option(star(sym("a")))


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        ["", "(", "a+", "a)", "+a", "'unterminated", "%unknown", "a**b)c(", "*"],
    )
    def test_syntax_errors(self, text):
        with pytest.raises(RegexSyntaxError):
            parse(text)

    def test_error_reports_position(self):
        with pytest.raises(RegexSyntaxError) as excinfo:
            parse("ab c )")
        assert excinfo.value.position == 5

    def test_dangling_escape(self):
        with pytest.raises(RegexSyntaxError):
            parse("'oops\\")


class TestRoundTrip:
    @given(regex_strategy())
    def test_print_parse_roundtrip(self, expr):
        assert parse(to_string(expr)) == expr

    def test_roundtrip_quoted(self):
        expr = concat(sym("two words"), star(sym("a")))
        assert parse(to_string(expr)) == expr

    def test_roundtrip_paper_views(self):
        for text in ("a", "a.c*.b", "c", "a.(b.a+c)*"):
            assert to_string(parse(text)) == text
