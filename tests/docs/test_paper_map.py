"""Staleness check for docs/paper_map.md (and architecture.md).

Every dotted ``repro.*`` name in the paper map must import, and every
referenced ``tests/...`` / ``benchmarks/...`` file must exist — so the
map cannot silently outlive a refactor.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent.parent
DOCS = ROOT / "docs"

_MODULE = re.compile(r"`(repro(?:\.\w+)+)`")
_FILE = re.compile(r"`((?:tests|benchmarks|docs|examples)/[\w/.-]+\.\w+)`")


def _page(name: str) -> str:
    return (DOCS / name).read_text(encoding="utf-8")


@pytest.mark.parametrize("page", ["paper_map.md", "architecture.md"])
def test_referenced_modules_import(page):
    names = sorted(set(_MODULE.findall(_page(page))))
    assert names, f"{page} names no repro modules?"
    for name in names:
        module_name, _, attr = name.rpartition(".")
        try:
            importlib.import_module(name)
            continue
        except ModuleNotFoundError:
            pass
        # Not a module: must be an attribute of its parent module.
        module = importlib.import_module(module_name)
        assert hasattr(module, attr), f"{page}: stale reference {name}"


@pytest.mark.parametrize("page", ["paper_map.md", "architecture.md"])
def test_referenced_files_exist(page):
    paths = sorted(set(_FILE.findall(_page(page))))
    for path in paths:
        assert (ROOT / path).exists(), f"{page}: stale file reference {path}"


def test_paper_map_covers_all_rpq_and_service_modules():
    """Every non-private module of rpq/ and service/ appears in the map."""
    text = _page("paper_map.md") + _page("architecture.md")
    for package in ("rpq", "service"):
        for module in (ROOT / "src" / "repro" / package).glob("*.py"):
            if module.stem.startswith("_"):
                continue
            assert f"repro.{package}.{module.stem}" in text, (
                f"docs never mention repro.{package}.{module.stem}"
            )
