"""Execute every python snippet of docs/quickstart.md, in order.

The quickstart promises that its code blocks run verbatim; this test is
that promise.  All ```python blocks are concatenated into one script and
executed in a single namespace (the page is written as one continuous
session), so renaming an API or changing an answer set breaks CI here
before it breaks a reader.
"""

from __future__ import annotations

import re
from pathlib import Path

DOCS = Path(__file__).resolve().parent.parent.parent / "docs"

_PYTHON_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(page: str) -> list[str]:
    return _PYTHON_BLOCK.findall((DOCS / page).read_text(encoding="utf-8"))


def test_quickstart_has_snippets():
    blocks = python_blocks("quickstart.md")
    assert len(blocks) >= 6, "quickstart lost its walkthrough snippets"


def test_quickstart_snippets_execute():
    script = "\n".join(python_blocks("quickstart.md"))
    namespace: dict = {}
    exec(compile(script, "docs/quickstart.md", "exec"), namespace)
    # The walkthrough's main artifacts came out of the executed snippets.
    assert namespace["plan"].is_exact()
    assert namespace["cache"].stats["built"] == 1


def test_readme_usage_snippets_execute():
    readme = Path(__file__).resolve().parent.parent.parent / "README.md"
    blocks = _PYTHON_BLOCK.findall(readme.read_text(encoding="utf-8"))
    assert blocks, "README lost its Usage snippet"
    for i, block in enumerate(blocks):
        exec(compile(block, f"README.md[block {i}]", "exec"), {})
