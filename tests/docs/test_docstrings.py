"""Docstring audit of the public API surface.

Every symbol re-exported through ``__all__`` of :mod:`repro.core`,
:mod:`repro.rpq`, and :mod:`repro.service` must carry a real docstring —
at least one full sentence of substance, not a stub — since these three
modules are the documented entry points (``docs/quickstart.md`` and the
README route readers to them).  Non-callable exports (e.g. the ``TOP``
formula instance or the ``STRATEGIES`` tuple) are checked through their
class, or exempted when the class is a builtin container.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

AUDITED_MODULES = ("repro.core", "repro.rpq", "repro.service")

# Plain data constants (builtin containers) and typing aliases; their
# meaning is documented where they are defined and used.
DATA_CONSTANTS = {
    ("repro.rpq", "STRATEGIES"),
    ("repro.core", "LanguageSpec"),
}

MIN_LENGTH = 60


def _exports():
    for module_name in AUDITED_MODULES:
        module = importlib.import_module(module_name)
        for name in module.__all__:
            yield module_name, name


@pytest.mark.parametrize("module_name,name", sorted(set(_exports())))
def test_export_has_substantial_docstring(module_name, name):
    module = importlib.import_module(module_name)
    obj = getattr(module, name)
    if (module_name, name) in DATA_CONSTANTS:
        return
    if not (inspect.isclass(obj) or callable(obj)):
        obj = type(obj)
    doc = inspect.getdoc(obj) or ""
    assert len(doc) >= MIN_LENGTH, (
        f"{module_name}.{name} has a thin docstring ({len(doc)} chars): {doc!r}"
    )


@pytest.mark.parametrize("module_name", AUDITED_MODULES)
def test_module_docstring_is_substantial(module_name):
    module = importlib.import_module(module_name)
    assert len(inspect.getdoc(module) or "") >= 200, (
        f"{module_name} needs a real module docstring"
    )
