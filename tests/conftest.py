"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random
from itertools import product

import pytest
from hypothesis import strategies as st

from repro.regex.ast import (
    EMPTY,
    EPSILON,
    Regex,
    concat,
    star,
    sym,
    union,
)

ALPHABET = ("a", "b", "c")


def regex_strategy(alphabet: tuple[str, ...] = ALPHABET, max_leaves: int = 8):
    """A hypothesis strategy producing random regular expressions."""
    leaves = st.one_of(
        st.sampled_from([sym(a) for a in alphabet]),
        st.just(EPSILON),
        st.just(EMPTY),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda pair: concat(*pair)),
            st.tuples(children, children).map(lambda pair: union(*pair)),
            children.map(star),
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)


def words_up_to(alphabet, max_length):
    """All words over ``alphabet`` of length at most ``max_length``."""
    for length in range(max_length + 1):
        yield from product(alphabet, repeat=length)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="session")
def fig1_rewriting():
    """The paper's Figure 1 instance, computed once per session."""
    from repro import ViewSet, maximal_rewriting

    views = ViewSet({"e1": "a", "e2": "a.c*.b", "e3": "c"})
    return maximal_rewriting("a.(b.a+c)*", views)


@pytest.fixture(scope="session")
def expspace_instances():
    """Theorem 3.3 instances (solvable + unsolvable) with their rewritings.

    Building these involves a ~100k-state subset construction, so they are
    shared across the whole session.
    """
    from repro.core import maximal_rewriting
    from repro.reductions import TilingSystem, expspace_reduction

    solvable = TilingSystem(
        tiles=("a", "b"),
        horizontal=frozenset({("a", "b")}),
        vertical=frozenset({("a", "a"), ("b", "b")}),
        t_start="a",
        t_final="b",
    )
    unsolvable = TilingSystem(
        tiles=("a", "b"),
        horizontal=frozenset({("a", "b")}),
        vertical=frozenset({("a", "a"), ("b", "b")}),
        t_start="a",
        t_final="a",
    )
    instances = {}
    for name, system in (("solvable", solvable), ("unsolvable", unsolvable)):
        reduction = expspace_reduction(system, n=1)
        rewriting = maximal_rewriting(reduction.e0, reduction.views)
        instances[name] = (reduction, rewriting)
    return instances


@pytest.fixture(scope="session")
def counter_instance():
    """The Theorem 3.4 instance at n=1 with its rewriting (session-cached)."""
    from repro.core import maximal_rewriting
    from repro.reductions import counter_reduction

    reduction = counter_reduction(1)
    rewriting = maximal_rewriting(reduction.e0, reduction.views)
    return reduction, rewriting
