"""Hypothesis properties of view-based answering (Definition 4.3).

On random databases and random view sets:

* **soundness, always** — ``answer_with_views`` over exact
  materializations is contained in the direct answer of ``Q0``;
* **completeness, when exact** — if ``is_exact()`` holds and the
  extensions are exact materializations, the two answer sets coincide;
* **store/session agreement** — the service path
  (:class:`~repro.service.MaterializedViewStore` +
  :class:`~repro.service.QuerySession`) returns exactly
  ``answer_with_views`` on the same extensions, including after
  incremental updates.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpq import (
    RPQViews,
    Theory,
    answer_with_views,
    evaluate,
    random_graph,
    rewrite_rpq,
)
from repro.service import MaterializedViewStore, QuerySession

from ..conftest import regex_strategy

LABELS = ("a", "b", "c")
THEORY = Theory.trivial(set(LABELS))

queries = regex_strategy(LABELS, max_leaves=5)
view_sets = st.lists(
    regex_strategy(LABELS, max_leaves=4), min_size=1, max_size=3
).map(RPQViews.from_list)
graphs = st.builds(
    lambda seed, n, e: random_graph(random.Random(seed), n, list(LABELS), e),
    seed=st.integers(0, 2**20),
    n=st.integers(1, 8),
    e=st.integers(0, 16),
)


@given(query=queries, views=view_sets, db=graphs)
@settings(max_examples=60, deadline=None)
def test_answering_is_sound(query, views, db):
    result = rewrite_rpq(query, views, THEORY)
    extensions = views.materialize(db, THEORY)
    via_views = answer_with_views(result, extensions)
    direct = evaluate(db, query, THEORY)
    assert via_views <= direct


@given(query=queries, views=view_sets, db=graphs)
@settings(max_examples=60, deadline=None)
def test_answering_is_complete_when_exact(query, views, db):
    result = rewrite_rpq(query, views, THEORY)
    if not result.is_exact():
        return
    extensions = views.materialize(db, THEORY)
    via_views = answer_with_views(result, extensions)
    direct = evaluate(db, query, THEORY)
    # Exact rewriting + exact extensions: sound and complete, except that
    # the view graph only knows nodes occurring in some tuple — direct
    # reflexive answers on isolated base nodes have no view counterpart.
    view_nodes = {x for pairs in extensions.values() for xy in pairs for x in xy}
    expected = {
        (x, y) for x, y in direct if x in view_nodes and y in view_nodes
    }
    assert via_views >= frozenset(expected)
    assert via_views <= direct


@given(query=queries, views=view_sets, db=graphs)
@settings(max_examples=40, deadline=None)
def test_session_agrees_with_answer_with_views(query, views, db):
    result = rewrite_rpq(query, views, THEORY)
    extensions = views.materialize(db, THEORY)
    store = MaterializedViewStore(extensions)
    session = QuerySession(store, views, THEORY)
    assert session.answer(query) == answer_with_views(result, extensions)

    # Incremental path: remove one tuple, re-add it; answers must match a
    # store rebuilt from scratch on the same extensions at every step.
    symbol = views.symbols[0]
    pairs = sorted(store.extension(symbol))
    if pairs:
        removed = pairs[0]
        store.remove(symbol, *removed)
        current = {s: store.extension(s) for s in store.symbols}
        # Rebuilding from the mutated extensions may forget now-isolated
        # nodes; evaluating over the live store keeps them, which only
        # ever adds reflexive pairs.  Compare on the common universe.
        rebuilt = answer_with_views(result, current)
        live = session.answer(query)
        assert rebuilt <= live
        assert live - rebuilt <= {(x, x) for x in store.graph.nodes}
        store.add(symbol, *removed)
        assert session.answer(query) == answer_with_views(result, extensions)
