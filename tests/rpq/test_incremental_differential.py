"""Randomized differential harness: incremental == full == naive oracle.

Three ways to answer a view-based query over an evolving store must
agree at every step of every seeded update stream:

* an **incremental** :class:`~repro.service.session.QuerySession`
  (retained :class:`~repro.rpq.incremental.DeltaSweepState`; insert
  deltas resume the sweep, delete deltas run delete-rederive — every
  replayable delta patches in place);
* a **full-recompute** session (``incremental=False`` — one fresh sweep
  per version);
* the **naive oracle** — :func:`repro.rpq.evaluation.naive_ans` of the
  plan's rewriting over the view graph induced by a snapshot of the
  extensions (per-source BFS, no compiled anything).

Streams come from :func:`repro.rpq.workload.make_update_stream` — the
same generator the benchmark uses — drawn by hypothesis across workload
families, seeds, and mixes from insert-only through delete-only
(``delete_fraction`` up to 1.0, with and without delete-then-reinsert
pressure), and with ``parallelism`` both off and on (with parallelism,
deltas route to full *sharded* sweeps; answers must not care).  Directed
regressions cover the known sharp edges: deleting a node's last
incident edge (its epsilon diagonal must survive), reinserting the
exact tuple just deleted, and multi-op mixed batches absorbed as one
delta.  All-pairs answers are compared as sorted lists, pinning the
ordering guarantee alongside the answer sets.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpq import FAMILIES, RPQViews, Theory, make_graph, make_queries
from repro.rpq import make_update_stream, naive_ans
from repro.rpq.evaluation import sort_pairs
from repro.rpq.views import view_graph
from repro.rpq.workload import _LABELS
from repro.service import MaterializedViewStore, QuerySession


def elementary_setup(family, seed, edges):
    """(store, views, theory, query) with elementary view extensions of a
    seeded family graph — the rewriting is exact, so every discrepancy
    is a maintenance bug, never a views-can't-express-it artifact."""
    labels = _LABELS[family]
    db = make_graph(family, seed, edges=edges)
    extensions = {f"v_{label}": [] for label in labels}
    for source, label, target in db.edges():
        extensions[f"v_{label}"].append((source, target))
    extensions = {symbol: sorted(pairs) for symbol, pairs in extensions.items()}
    store = MaterializedViewStore(extensions)
    views = RPQViews({f"v_{label}": label for label in labels})
    theory = Theory.trivial(set(labels))
    queries = make_queries(family, seed, count=4)
    return store, views, theory, queries


def apply_op(store, op) -> bool:
    if op.op == "insert":
        return store.add(op.symbol, op.source, op.target)
    return store.remove(op.symbol, op.source, op.target)


def oracle_sorted(session, query):
    """naive_ans of the session's plan over a snapshot view graph.

    The store's node universe is append-only (a node whose last tuple
    was deleted keeps its reflexive epsilon answers), so the oracle
    graph re-interns the store's full universe before the snapshot
    edges — same database semantics, naive evaluator.
    """
    plan = session.plan(query)
    store_graph = session.store.graph
    _version, extensions = session.store.snapshot()
    graph = view_graph(extensions)
    for node_id in range(store_graph.num_nodes):
        graph.add_node(store_graph.node_at(node_id))
    return sort_pairs(store_graph, naive_ans(plan.automaton, graph))


@st.composite
def maintenance_cases(draw):
    family = draw(st.sampled_from(FAMILIES))
    seed = draw(st.integers(min_value=0, max_value=999_999))
    edges = draw(st.integers(min_value=4, max_value=30))
    count = draw(st.integers(min_value=1, max_value=12))
    delete_fraction = draw(st.sampled_from((0.0, 0.3, 0.6, 1.0)))
    reinsert_fraction = draw(st.sampled_from((0.0, 0.5)))
    parallelism = draw(st.sampled_from((None, 3)))
    return (
        family, seed, edges, count,
        delete_fraction, reinsert_fraction, parallelism,
    )


@settings(max_examples=50, deadline=None)
@given(case=maintenance_cases())
def test_incremental_equals_full_equals_naive_under_updates(case):
    (
        family, seed, edges, count,
        delete_fraction, reinsert_fraction, parallelism,
    ) = case
    store, views, theory, queries = elementary_setup(family, seed, edges)
    query = queries[seed % len(queries)]
    incremental = QuerySession(store, views, theory, parallelism=parallelism)
    full = QuerySession(store, views, theory, incremental=False)
    stream = make_update_stream(
        family,
        seed,
        count=count,
        base={symbol: store.extension(symbol) for symbol in store.symbols},
        delete_fraction=delete_fraction,
        reinsert_fraction=reinsert_fraction,
    )
    expected = full.answer_sorted(query)
    assert incremental.answer_sorted(query) == expected
    assert oracle_sorted(full, query) == expected
    deletes = 0
    for op in stream:
        assert apply_op(store, op)
        deletes += op.op == "delete"
        expected = full.answer_sorted(query)
        assert incremental.answer_sorted(query) == expected
        assert oracle_sorted(full, query) == expected
    if parallelism:
        # Sharded sessions route every delta to a full sharded sweep.
        assert incremental.stats["incremental_updates"] == 0
        assert incremental.stats["parallel_sweeps"] >= 1
    else:
        # Every step — insert, delete, or mixed — patched in place; the
        # only full sweep is the initial build (the compile domain is
        # pinned to the view alphabet, so no update recompiles).
        assert incremental.stats["incremental_updates"] == len(stream)
        assert incremental.stats["full_recomputes"] == 1
        assert incremental.stats["incremental_deletes"] == deletes


@settings(max_examples=20, deadline=None)
@given(
    family=st.sampled_from(FAMILIES),
    seed=st.integers(min_value=0, max_value=99_999),
)
def test_mixed_stream_statistics_are_consistent(family, seed):
    """Every step patches in place — inserts resume the sweep, deletes
    run delete-rederive — and the counters must say so exactly."""
    store, views, theory, _queries = elementary_setup(family, seed, edges=10)
    query = _LABELS[family][0]
    session = QuerySession(store, views, theory)
    full = QuerySession(store, views, theory, incremental=False)
    session.answer(query)
    inserts = deletes = 0
    stream = make_update_stream(
        family,
        seed,
        count=8,
        base={symbol: store.extension(symbol) for symbol in store.symbols},
        delete_fraction=0.5,
    )
    for op in stream:
        assert apply_op(store, op)
        assert session.answer_sorted(query) == full.answer_sorted(query)
        if op.op == "insert":
            inserts += 1
        else:
            deletes += 1
    stats = session.stats
    assert stats["full_recomputes"] == 1  # the initial build, nothing else
    assert stats["incremental_updates"] == len(stream)
    assert stats["incremental_deletes"] == deletes
    assert stats["delta_edges_applied"] == len(stream)


def _assert_all_agree(incremental, full, query):
    expected = full.answer_sorted(query)
    assert incremental.answer_sorted(query) == expected
    assert oracle_sorted(full, query) == expected
    return expected


class TestDeletionRegressions:
    """Directed cases for the sharp edges of delete-rederive."""

    def _sessions(self, family, seed, edges):
        store, views, theory, queries = elementary_setup(family, seed, edges)
        incremental = QuerySession(store, views, theory)
        full = QuerySession(store, views, theory, incremental=False)
        return store, incremental, full, queries

    def test_delete_only_stream_down_to_empty(self):
        """delete_fraction=1.0: drain every tuple the store has, one op
        at a time, comparing all three answerers at each step."""
        store, incremental, full, queries = self._sessions("grid", 7, 12)
        query = queries[0]
        _assert_all_agree(incremental, full, query)
        for symbol, source, target in sorted(
            (symbol, source, target)
            for symbol in store.symbols
            for source, target in store.extension(symbol)
        ):
            assert store.remove(symbol, source, target)
            _assert_all_agree(incremental, full, query)
        assert store.num_tuples == 0
        assert incremental.stats["full_recomputes"] == 1

    def test_delete_then_reinsert_same_tuple(self):
        store, incremental, full, queries = self._sessions("chain", 3, 8)
        query = queries[1]
        before = _assert_all_agree(incremental, full, query)
        symbol = sorted(store.symbols)[0]
        source, target = sorted(store.extension(symbol))[0]
        assert store.remove(symbol, source, target)
        _assert_all_agree(incremental, full, query)
        assert store.add(symbol, source, target)
        after = _assert_all_agree(incremental, full, query)
        assert after == before
        assert incremental.stats["full_recomputes"] == 1
        assert incremental.stats["incremental_updates"] == 2

    def test_deleting_a_nodes_last_incident_edge(self):
        """The node stays in the universe (interning is append-only), so
        a starred query must keep its reflexive epsilon answer."""
        store = MaterializedViewStore({"v_a": [("x", "y")], "v_b": [("y", "x")]})
        views = RPQViews({"v_a": "a", "v_b": "b"})
        theory = Theory.trivial({"a", "b"})
        incremental = QuerySession(store, views, theory)
        full = QuerySession(store, views, theory, incremental=False)
        query = "(a+b)*"
        _assert_all_agree(incremental, full, query)
        assert store.remove("v_b", "y", "x")
        expected = _assert_all_agree(incremental, full, query)
        assert ("y", "y") in expected  # epsilon diagonal survived
        assert store.remove("v_a", "x", "y")  # y is now fully isolated
        expected = _assert_all_agree(incremental, full, query)
        assert set(expected) == {("x", "x"), ("y", "y")}
        assert incremental.stats["full_recomputes"] == 1
        assert incremental.stats["incremental_deletes"] == 2

    def test_interleaved_mixed_batches_absorbed_as_one_delta(self):
        """Several ops land between answers: the session sees one mixed
        delta per batch and must still match full recompute + oracle."""
        store, incremental, full, queries = self._sessions("scale_free", 11, 20)
        query = queries[2]
        stream = make_update_stream(
            "scale_free",
            11,
            count=15,
            base={symbol: store.extension(symbol) for symbol in store.symbols},
            delete_fraction=0.4,
            reinsert_fraction=0.5,
        )
        _assert_all_agree(incremental, full, query)
        batches = [stream[i : i + 3] for i in range(0, len(stream), 3)]
        for batch in batches:
            for op in batch:
                assert apply_op(store, op)
            _assert_all_agree(incremental, full, query)
        assert incremental.stats["full_recomputes"] == 1
        assert incremental.stats["incremental_updates"] == len(batches)
