"""Randomized differential harness: incremental == full == naive oracle.

Three ways to answer a view-based query over an evolving store must
agree at every step of every seeded update stream:

* an **incremental** :class:`~repro.service.session.QuerySession`
  (retained :class:`~repro.rpq.incremental.DeltaSweepState`, pure-insert
  deltas absorbed in place, everything else a full rebuild);
* a **full-recompute** session (``incremental=False`` — one fresh sweep
  per version);
* the **naive oracle** — :func:`repro.rpq.evaluation.naive_ans` of the
  plan's rewriting over the view graph induced by a snapshot of the
  extensions (per-source BFS, no compiled anything).

Streams come from :func:`repro.rpq.workload.make_update_stream` — the
same generator the benchmark uses — drawn by hypothesis across workload
families, seeds, insert-only and mixed insert/delete mixes, and with
``parallelism`` both off and on (with parallelism, deltas route to full
*sharded* sweeps; answers must not care).  All-pairs answers are
compared as sorted lists, pinning the ordering guarantee alongside the
answer sets.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpq import FAMILIES, RPQViews, Theory, make_graph, make_queries
from repro.rpq import make_update_stream, naive_ans
from repro.rpq.evaluation import sort_pairs
from repro.rpq.views import view_graph
from repro.rpq.workload import _LABELS
from repro.service import MaterializedViewStore, QuerySession


def elementary_setup(family, seed, edges):
    """(store, views, theory, query) with elementary view extensions of a
    seeded family graph — the rewriting is exact, so every discrepancy
    is a maintenance bug, never a views-can't-express-it artifact."""
    labels = _LABELS[family]
    db = make_graph(family, seed, edges=edges)
    extensions = {f"v_{label}": [] for label in labels}
    for source, label, target in db.edges():
        extensions[f"v_{label}"].append((source, target))
    extensions = {symbol: sorted(pairs) for symbol, pairs in extensions.items()}
    store = MaterializedViewStore(extensions)
    views = RPQViews({f"v_{label}": label for label in labels})
    theory = Theory.trivial(set(labels))
    queries = make_queries(family, seed, count=4)
    return store, views, theory, queries


def apply_op(store, op) -> bool:
    if op.op == "insert":
        return store.add(op.symbol, op.source, op.target)
    return store.remove(op.symbol, op.source, op.target)


def oracle_sorted(session, query):
    """naive_ans of the session's plan over a snapshot view graph.

    The store's node universe is append-only (a node whose last tuple
    was deleted keeps its reflexive epsilon answers), so the oracle
    graph re-interns the store's full universe before the snapshot
    edges — same database semantics, naive evaluator.
    """
    plan = session.plan(query)
    store_graph = session.store.graph
    _version, extensions = session.store.snapshot()
    graph = view_graph(extensions)
    for node_id in range(store_graph.num_nodes):
        graph.add_node(store_graph.node_at(node_id))
    return sort_pairs(store_graph, naive_ans(plan.automaton, graph))


@st.composite
def maintenance_cases(draw):
    family = draw(st.sampled_from(FAMILIES))
    seed = draw(st.integers(min_value=0, max_value=999_999))
    edges = draw(st.integers(min_value=4, max_value=30))
    count = draw(st.integers(min_value=1, max_value=12))
    delete_fraction = draw(st.sampled_from((0.0, 0.3, 0.6)))
    parallelism = draw(st.sampled_from((None, 3)))
    return family, seed, edges, count, delete_fraction, parallelism


@settings(max_examples=50, deadline=None)
@given(case=maintenance_cases())
def test_incremental_equals_full_equals_naive_under_updates(case):
    family, seed, edges, count, delete_fraction, parallelism = case
    store, views, theory, queries = elementary_setup(family, seed, edges)
    query = queries[seed % len(queries)]
    incremental = QuerySession(store, views, theory, parallelism=parallelism)
    full = QuerySession(store, views, theory, incremental=False)
    stream = make_update_stream(
        family,
        seed,
        count=count,
        base={symbol: store.extension(symbol) for symbol in store.symbols},
        delete_fraction=delete_fraction,
    )
    expected = full.answer_sorted(query)
    assert incremental.answer_sorted(query) == expected
    assert oracle_sorted(full, query) == expected
    for op in stream:
        assert apply_op(store, op)
        expected = full.answer_sorted(query)
        assert incremental.answer_sorted(query) == expected
        assert oracle_sorted(full, query) == expected
    if parallelism:
        # Sharded sessions route every delta to a full sharded sweep.
        assert incremental.stats["incremental_updates"] == 0
        assert incremental.stats["parallel_sweeps"] >= 1
    elif delete_fraction == 0.0 and count >= 4:
        # Insert-only streams must actually exercise the delta path (a
        # first tuple on a previously-empty view grows the label domain
        # and legitimately recompiles+rebuilds, hence >= 1, not == count).
        assert incremental.stats["incremental_updates"] >= 1


@settings(max_examples=20, deadline=None)
@given(
    family=st.sampled_from(FAMILIES),
    seed=st.integers(min_value=0, max_value=99_999),
)
def test_mixed_stream_statistics_are_consistent(family, seed):
    """Inserts advance the state, deletes rebuild it: the session's
    counters must reflect exactly which path each step took."""
    store, views, theory, _queries = elementary_setup(family, seed, edges=10)
    query = _LABELS[family][0]
    session = QuerySession(store, views, theory)
    full = QuerySession(store, views, theory, incremental=False)
    session.answer(query)
    inserts = deletes = 0
    stream = make_update_stream(
        family,
        seed,
        count=8,
        base={symbol: store.extension(symbol) for symbol in store.symbols},
        delete_fraction=0.5,
    )
    for op in stream:
        assert apply_op(store, op)
        assert session.answer_sorted(query) == full.answer_sorted(query)
        if op.op == "insert":
            inserts += 1
        else:
            deletes += 1
    stats = session.stats
    # Every step took exactly one of the two paths (plus the initial
    # build); deletions always rebuild; an insert normally patches, but
    # may legitimately rebuild when it grows the label domain (first
    # tuple of an empty view recompiles the automaton).
    assert stats["incremental_updates"] + stats["full_recomputes"] == 1 + len(stream)
    assert stats["incremental_updates"] <= inserts
    assert stats["full_recomputes"] >= 1 + deletes
