"""Randomized differential harness: numpy kernel vs big-int vs naive.

The vectorized block-bitmatrix kernel (:mod:`repro.rpq.kernel`) must be
indistinguishable from the big-int engine on every graph — same pairs,
same documented sort order, bit for bit — and both must agree with the
literal Definition 4.2 oracle (:func:`repro.rpq.evaluation.naive_evaluate`).
Hypothesis draws workload family x seed x edge budget through the seeded
generator, so failures replay from their seed; deterministic tests pin
the boundary geometry the block layout is most likely to get wrong
(empty graphs, single nodes, widths straddling the 64-bit word size) and
sweep the parallel tier across shard and worker counts on both backends.

The incremental twin (:class:`repro.rpq.incremental.NumpyDeltaSweepState`)
is held to the same standard under seeded insert/delete streams: after
every operation its answers must equal the big-int delta state's *and* a
from-scratch sweep of the mutated graph.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpq import (
    FAMILIES,
    RPQ,
    GraphDB,
    ParallelEvaluator,
    make_graph,
    make_queries,
    naive_evaluate,
    sort_pairs,
)
from repro.rpq import engine as engine_mod
from repro.rpq import kernel as kernel_mod
from repro.rpq.engine import NUMPY_BACKEND_MIN_EDGES, resolve_backend
from repro.rpq.graphdb import random_graph
from repro.rpq.incremental import DeltaSweepState, NumpyDeltaSweepState


def compiled_for(db, query):
    rpq = query if isinstance(query, RPQ) else RPQ(query)
    return engine_mod.compile_automaton(rpq.eps_free_nfa(), None, db.domain())


@st.composite
def workload_cases(draw, max_edges=40):
    family = draw(st.sampled_from(FAMILIES))
    seed = draw(st.integers(min_value=0, max_value=999_999))
    edges = draw(st.integers(min_value=4, max_value=max_edges))
    graph = make_graph(family, seed, edges=edges)
    queries = make_queries(family, seed, count=4)
    query = queries[draw(st.integers(min_value=0, max_value=3))]
    return family, graph, query


class TestBackendResolution:
    def test_auto_threshold(self):
        small = random_graph(random.Random(0), 10, ["a"], 20)
        assert resolve_backend(small, "auto") == "bigint"
        assert resolve_backend(small, "numpy") == "numpy"
        assert resolve_backend(small, "bigint") == "bigint"

    def test_unknown_backend_rejected(self):
        db = GraphDB([("x", "a", "y")])
        with pytest.raises(ValueError):
            resolve_backend(db, "gpu")
        with pytest.raises(ValueError):
            engine_mod.evaluate_all(db, compiled_for(db, "a"), backend="gpu")

    def test_threshold_is_edge_count(self):
        db = GraphDB([("x", "a", "y")])
        assert db.num_edges < NUMPY_BACKEND_MIN_EDGES
        assert resolve_backend(db, "auto") == "bigint"


@settings(max_examples=60, deadline=None)
@given(case=workload_cases())
def test_numpy_matches_bigint_and_naive(case):
    _family, graph, query = case
    compiled = compiled_for(graph, query)
    big = engine_mod.evaluate_all_sorted(graph, compiled, backend="bigint")
    vec = engine_mod.evaluate_all_sorted(graph, compiled, backend="numpy")
    assert vec == big
    assert frozenset(vec) == naive_evaluate(graph, query)


@settings(max_examples=25, deadline=None)
@given(
    case=workload_cases(),
    num_shards=st.sampled_from((1, 2, 3, 7)),
)
def test_numpy_sharded_matches_sequential(case, num_shards):
    _family, graph, query = case
    compiled = compiled_for(graph, query)
    expected = engine_mod.evaluate_all_sorted(graph, compiled, backend="bigint")
    with ParallelEvaluator(graph, num_shards, backend="numpy") as evaluator:
        assert evaluator.evaluate_all_sorted(compiled) == expected


class TestBoundaryGeometry:
    """Widths straddling the uint64 block size, plus degenerate graphs."""

    @pytest.mark.parametrize("num_nodes", [1, 2, 63, 64, 65, 127, 128, 130])
    @pytest.mark.parametrize("expr", ["a*", "a.a", "(a+b)*"])
    def test_cycle_widths(self, num_nodes, expr):
        db = GraphDB()
        for i in range(num_nodes):
            db.add_edge(f"n{i}", "a", f"n{(i + 1) % num_nodes}")
            if i % 3 == 0:
                db.add_edge(f"n{i}", "b", f"n{(i * 2 + 1) % num_nodes}")
        compiled = compiled_for(db, expr)
        big = engine_mod.evaluate_all_sorted(db, compiled, backend="bigint")
        vec = engine_mod.evaluate_all_sorted(db, compiled, backend="numpy")
        assert vec == big

    def test_empty_graph(self):
        db = GraphDB()
        compiled = compiled_for(GraphDB([("x", "a", "y")]), "a*")
        assert engine_mod.evaluate_all_sorted(db, compiled, backend="numpy") == []
        assert kernel_mod.all_pairs_ids(db.to_csr(), compiled) == []

    def test_single_isolated_node(self):
        db = GraphDB(nodes=["lonely"])
        compiled = compiled_for(GraphDB([("x", "a", "y")]), "a*")
        for backend in ("bigint", "numpy"):
            assert engine_mod.evaluate_all_sorted(
                db, compiled, backend=backend
            ) == [("lonely", "lonely")]

    def test_self_loop_single_node(self):
        db = GraphDB([("n", "a", "n")])
        compiled = compiled_for(db, "a.a.a")
        for backend in ("bigint", "numpy"):
            assert engine_mod.evaluate_all_sorted(
                db, compiled, backend=backend
            ) == [("n", "n")]

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5, 64, 65])
    def test_window_boundaries_across_shards(self, num_shards):
        """Shard windows cut at non-multiple-of-64 offsets must still
        re-base masks exactly."""
        db = GraphDB()
        for i in range(130):
            db.add_edge(f"n{i}", "a", f"n{(i + 7) % 130}")
        compiled = compiled_for(db, "a.a")
        expected = engine_mod.evaluate_all_sorted(db, compiled)
        for backend in ("bigint", "numpy"):
            with ParallelEvaluator(db, num_shards, backend=backend) as ev:
                assert ev.evaluate_all_sorted(compiled) == expected


class TestEntryPointParity:
    """Single-source and single-pair answers match across backends."""

    def test_workload_entry_points(self):
        graph = make_graph("scale_free", 77, edges=60)
        query = make_queries("scale_free", 77, count=1)[0]
        compiled = compiled_for(graph, query)
        nodes = sorted(graph.nodes, key=graph.node_id)
        for backend in ("bigint", "numpy"):
            with ParallelEvaluator(graph, 3, backend=backend) as ev:
                for source in nodes[:6]:
                    expected = engine_mod.evaluate_single_source(
                        graph, compiled, source
                    )
                    assert ev.evaluate_single_source(compiled, source) == expected
                    for target in nodes[:4]:
                        assert ev.evaluate_pair(
                            compiled, source, target
                        ) == engine_mod.evaluate_pair(
                            graph, compiled, source, target
                        )


class TestWorkerPool:
    """The pooled numpy path (mmap snapshot shipping) stays bit-identical."""

    def test_pool_matches_sequential(self):
        graph = make_graph("grid", 5, edges=60)
        query = make_queries("grid", 5, count=1)[0]
        compiled = compiled_for(graph, query)
        expected = engine_mod.evaluate_all_sorted(graph, compiled)
        with ParallelEvaluator(graph, 4, workers=2, backend="numpy") as ev:
            assert ev.evaluate_all_sorted(compiled) == expected
            # Again, through the now-warm worker snapshot cache.
            assert ev.evaluate_all_sorted(compiled) == expected

    def test_pool_survives_refresh(self):
        graph = make_graph("chain", 11, edges=40)
        query = make_queries("chain", 11, count=1)[0]
        compiled = compiled_for(graph, query)
        with ParallelEvaluator(graph, 4, workers=2, backend="numpy") as ev:
            before = ev.evaluate_all_sorted(compiled)
            assert before == engine_mod.evaluate_all_sorted(graph, compiled)
            nodes = sorted(graph.nodes, key=graph.node_id)
            graph.add_edge(nodes[0], "a", nodes[-1])
            ev.refresh()
            after = ev.evaluate_all_sorted(compiled)
            assert after == engine_mod.evaluate_all_sorted(graph, compiled)

    def test_injected_worker_fault_surfaces_typed_error(self):
        from repro.rpq.sharded import ShardedEvaluationError

        graph = make_graph("chain", 3, edges=30)
        query = make_queries("chain", 3, count=1)[0]
        compiled = compiled_for(graph, query)
        with ParallelEvaluator(
            graph, 4, backend="numpy", _fail_shards=(2,)
        ) as ev:
            with pytest.raises(ShardedEvaluationError):
                ev.evaluate_all_sorted(compiled)


class TestIncrementalParity:
    """NumpyDeltaSweepState == DeltaSweepState == from-scratch, per op."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("expr", ["a", "(a+b)*", "a.(b+c)*.a"])
    def test_interleaved_stream(self, seed, expr):
        rng = random.Random(seed)
        db = random_graph(
            rng, rng.choice([2, 63, 65, 90]), ["a", "b", "c"], 150
        )
        compiled = engine_mod.compile_automaton(
            RPQ(expr).eps_free_nfa(), None, frozenset(["a", "b", "c"])
        )
        big = DeltaSweepState(db, compiled)
        vec = NumpyDeltaSweepState(db, compiled)
        assert big.answers_sorted() == vec.answers_sorted()
        nodes = sorted(db.nodes, key=db.node_id)
        for step in range(12):
            if rng.random() < 0.6 or db.num_edges == 0:
                source = rng.choice(nodes)
                target = rng.choice(nodes + [f"fresh{step}"])
                label = rng.choice(["a", "b", "c"])
                db.add_edge(source, label, target)
                nodes = sorted(db.nodes, key=db.node_id)
                big.apply_insertions([(source, label, target)])
                vec.apply_insertions([(source, label, target)])
            else:
                edge = rng.choice(sorted(db.to_triples()))
                db.remove_edge(*edge)
                big.apply_deletions([edge])
                vec.apply_deletions([edge])
            got = vec.answers_sorted()
            assert got == big.answers_sorted()
            assert got == engine_mod.evaluate_all_sorted(
                db, compiled, backend="bigint"
            )
            assert vec.answers() == big.answers()

    def test_drain_to_empty_has_no_ghost_answers(self):
        db = GraphDB()
        for i in range(70):
            db.add_edge(f"n{i}", "a", f"n{(i + 1) % 70}")
        compiled = engine_mod.compile_automaton(
            RPQ("a*").eps_free_nfa(), None, frozenset(["a"])
        )
        big = DeltaSweepState(db, compiled)
        vec = NumpyDeltaSweepState(db, compiled)
        for edge in sorted(db.to_triples()):
            db.remove_edge(*edge)
            big.apply_deletions([edge])
            vec.apply_deletions([edge])
        expected = sorted((f"n{i}", f"n{i}") for i in range(70))
        assert sorted(vec.answers_sorted()) == expected
        assert vec.answers_sorted() == big.answers_sorted()
        nodes = db.nodes
        for x, y in vec.answers():
            assert x in nodes and y in nodes
