"""The two step-2 strategies and constant partitioning must agree.

The paper presents grounding (building ``Q*``) and the grounding-free
product construction as equivalent ways to compute ``A'``, plus the
constant-partitioning optimization; this is the SEC42OPT experiment of
DESIGN.md.
"""

import random
from itertools import product

import pytest

from repro.regex.ast import concat, star, sym
from repro.rpq import RPQ, Pred, RPQViews, Theory, rewrite_rpq
from repro.rpq.formulas import TOP


def big_theory():
    # 12 constants, 3 predicates — partitioning collapses many classes.
    domain = {f"c{i}" for i in range(12)}
    return Theory(
        domain=domain,
        predicates={
            "P": {f"c{i}" for i in range(0, 8)},
            "Q": {f"c{i}" for i in range(4, 12)},
            "R": {"c0"},
        },
    )


QUERIES = [
    RPQ(sym(Pred("P"))),
    RPQ(concat(sym(Pred("P")), star(sym(Pred("Q"))))),
    RPQ(concat(star(sym(TOP)), sym(Pred("R")))),
]

VIEWS = [
    RPQViews({"v1": RPQ(sym(Pred("P"))), "v2": RPQ(sym(Pred("Q")))}),
    RPQViews(
        {
            "v1": RPQ(concat(sym(Pred("P")), sym(Pred("Q")))),
            "v2": RPQ(sym(Pred("R"))),
            "v3": RPQ(star(sym(Pred("Q")))),
        }
    ),
]


def all_words(symbols, max_length):
    for length in range(max_length + 1):
        yield from product(symbols, repeat=length)


class TestStrategiesAgree:
    @pytest.mark.parametrize("query_index", range(len(QUERIES)))
    @pytest.mark.parametrize("views_index", range(len(VIEWS)))
    def test_ground_vs_product(self, query_index, views_index):
        theory = big_theory()
        q0, views = QUERIES[query_index], VIEWS[views_index]
        ground = rewrite_rpq(q0, views, theory, strategy="ground")
        product_r = rewrite_rpq(q0, views, theory, strategy="product")
        for word in all_words(views.symbols, 3):
            assert ground.accepts(word) == product_r.accepts(word), word

    @pytest.mark.parametrize("query_index", range(len(QUERIES)))
    def test_partitioned_vs_full_alphabet(self, query_index):
        theory = big_theory()
        q0, views = QUERIES[query_index], VIEWS[0]
        full = rewrite_rpq(q0, views, theory, partition=False)
        small = rewrite_rpq(q0, views, theory, partition=True)
        assert small.stats["alphabet_size"] < full.stats["alphabet_size"]
        for word in all_words(views.symbols, 3):
            assert full.accepts(word) == small.accepts(word), word

    @pytest.mark.parametrize("strategy", ["ground", "product"])
    def test_exactness_stable_across_options(self, strategy):
        theory = big_theory()
        q0, views = QUERIES[0], VIEWS[0]
        verdicts = {
            rewrite_rpq(q0, views, theory, strategy=strategy, partition=p).is_exact()
            for p in (False, True)
        }
        assert len(verdicts) == 1

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            rewrite_rpq(QUERIES[0], VIEWS[0], big_theory(), strategy="nope")


class TestPartitioningRespectsPlainSymbols:
    def test_plain_symbols_stay_distinguishable(self):
        # c0 appears literally in the query: it must not merge with c1 even
        # though no predicate separates them.
        theory = Theory(domain={"c0", "c1", "c2"})
        q0 = RPQ("c0")
        views = RPQViews({"v1": "c0", "v2": "c1"})
        result = rewrite_rpq(q0, views, theory, partition=True)
        assert result.accepts(("v1",))
        assert not result.accepts(("v2",))

    def test_random_plain_instances_with_partitioning(self):
        rng = random.Random(31)
        theory = Theory.trivial({"a", "b", "c", "d", "e"})
        for _ in range(5):
            from repro.regex.random_gen import random_regex

            q0 = RPQ(random_regex(rng, "ab", max_size=5))
            views = RPQViews(
                {
                    "v1": RPQ(random_regex(rng, "ab", max_size=3)),
                    "v2": RPQ(random_regex(rng, "ab", max_size=3)),
                }
            )
            full = rewrite_rpq(q0, views, theory, partition=False)
            small = rewrite_rpq(q0, views, theory, partition=True)
            for word in all_words(views.symbols, 3):
                assert full.accepts(word) == small.accepts(word)
