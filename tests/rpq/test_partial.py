"""Partial rewritings of RPQs with atomic views (Section 4.3)."""

import pytest

from repro.regex.ast import sym
from repro.rpq import (
    RPQ,
    Pred,
    RPQViews,
    Theory,
    atomic_view_name,
    find_partial_rpq_rewritings,
)


@pytest.fixture
def theory():
    return Theory(
        domain={"a1", "a2", "b1"},
        predicates={"A": {"a1", "a2"}, "B": {"a1", "a2", "b1"}},
    )


class TestSearch:
    def test_already_exact(self, theory):
        q0 = RPQ(sym(Pred("A")))
        views = RPQViews({"qA": RPQ(sym(Pred("A")))})
        solutions = find_partial_rpq_rewritings(q0, views, theory)
        assert solutions[0].num_added == 0

    def test_atomic_predicate_view_fixes_gap(self, theory):
        # Q0 = B, views = {A}: adding the atomic view for B (or the
        # elementary view for b1) yields exactness; both are minimal.
        q0 = RPQ(sym(Pred("B")))
        views = RPQViews({"qA": RPQ(sym(Pred("A")))})
        solutions = find_partial_rpq_rewritings(
            q0, views, theory, find_all_minimal=True
        )
        assert solutions
        assert all(sol.num_added == 1 for sol in solutions)
        kinds = {
            (sol.added_predicates, sol.added_constants) for sol in solutions
        }
        assert (("B",), ()) in kinds
        assert ((), ("b1",)) in kinds

    def test_elementary_only_search(self, theory):
        q0 = RPQ(sym(Pred("B")))
        views = RPQViews({"qA": RPQ(sym(Pred("A")))})
        solutions = find_partial_rpq_rewritings(
            q0, views, theory, allow_predicates=False
        )
        assert solutions
        assert solutions[0].added_predicates == ()
        assert solutions[0].added_constants == ("b1",)

    def test_predicates_only_search(self, theory):
        q0 = RPQ(sym(Pred("B")))
        views = RPQViews({"qA": RPQ(sym(Pred("A")))})
        solutions = find_partial_rpq_rewritings(
            q0, views, theory, allow_elementary=False
        )
        assert solutions
        assert solutions[0].added_predicates == ("B",)

    def test_elementary_preferred_at_equal_size(self, theory):
        # Criterion 3: at equal total count, fewer non-elementary views.
        q0 = RPQ(sym(Pred("B")))
        views = RPQViews({"qA": RPQ(sym(Pred("A")))})
        solutions = find_partial_rpq_rewritings(q0, views, theory)
        first = solutions[0]
        assert first.added_predicates == ()  # elementary tried first

    def test_max_added_zero_means_no_search(self, theory):
        q0 = RPQ(sym(Pred("B")))
        views = RPQViews({"qA": RPQ(sym(Pred("A")))})
        solutions = find_partial_rpq_rewritings(q0, views, theory, max_added=0)
        assert solutions == []

    def test_result_is_exact_and_usable(self, theory):
        from repro.rpq import GraphDB, evaluate

        q0 = RPQ(sym(Pred("B")))
        views = RPQViews({"qA": RPQ(sym(Pred("A")))})
        solution = find_partial_rpq_rewritings(q0, views, theory)[0]
        assert solution.result.is_exact()
        db = GraphDB([("x", "a1", "y"), ("y", "b1", "z")])
        via_views = solution.result.answer(db)
        assert via_views == evaluate(db, q0, theory)


class TestNames:
    def test_atomic_view_name(self):
        assert atomic_view_name(Pred("B")) == "q[B]"
        assert atomic_view_name("b1") == "q[=b1]"
