"""Unit tests for the compiled RPQ evaluation engine."""

import pytest

from repro.rpq import (
    RPQ,
    GraphDB,
    Pred,
    Theory,
    compile_automaton,
    compile_cache_clear,
    compile_cache_info,
    evaluate,
    evaluate_from,
    evaluate_pair,
    naive_evaluate,
)
from repro.rpq.engine import CompiledAutomaton, evaluate_all


@pytest.fixture
def diamond_db():
    return GraphDB(
        [
            ("s", "a", "l"),
            ("s", "a", "r"),
            ("l", "b", "t"),
            ("r", "c", "t"),
        ]
    )


class TestEdgeCases:
    def test_empty_graph(self):
        assert evaluate(GraphDB(), "a.b*") == frozenset()

    def test_empty_graph_with_epsilon_query(self):
        assert evaluate(GraphDB(), "a*") == frozenset()

    def test_empty_language_query(self, diamond_db):
        assert evaluate(diamond_db, "%empty") == frozenset()

    def test_epsilon_accepting_query_yields_all_diagonal_pairs(self):
        db = GraphDB([("x", "a", "y")])
        db.add_node("island")  # isolated nodes are answers too
        result = evaluate(db, "b*")
        assert result == frozenset((v, v) for v in db.nodes)

    def test_epsilon_only_query(self, diamond_db):
        assert evaluate(diamond_db, "%eps") == frozenset(
            (v, v) for v in diamond_db.nodes
        )

    def test_unknown_source_raises_keyerror(self, diamond_db):
        with pytest.raises(KeyError):
            evaluate_from(diamond_db, "nowhere", "a")

    def test_unknown_pair_endpoint_raises_keyerror(self, diamond_db):
        with pytest.raises(KeyError):
            evaluate_pair(diamond_db, "s", "nowhere", "a")
        with pytest.raises(KeyError):
            evaluate_pair(diamond_db, "nowhere", "t", "a")

    def test_query_label_absent_from_graph(self, diamond_db):
        assert evaluate(diamond_db, "z.z") == frozenset()


class TestGraphShapes:
    def test_parallel_edges(self):
        db = GraphDB([("x", "a", "y"), ("x", "b", "y")])
        assert evaluate(db, "a+b") == frozenset({("x", "y")})
        assert evaluate(db, "a.b") == frozenset()

    def test_self_loop(self):
        db = GraphDB([("x", "a", "x"), ("x", "b", "y")])
        assert evaluate(db, "a*.b") == frozenset({("x", "y")})
        assert evaluate(db, "a.a.a") == frozenset({("x", "x")})

    def test_self_loop_single_source(self):
        db = GraphDB([("x", "a", "x")])
        assert evaluate_from(db, "x", "a.a*") == frozenset({"x"})

    def test_diamond_all_pairs(self, diamond_db):
        result = evaluate(diamond_db, "a.(b+c)")
        assert result == frozenset({("s", "t")})


class TestBidirectionalPair:
    def test_pair_agrees_with_full_answer(self, diamond_db):
        full = evaluate(diamond_db, "a.b*")
        for x in diamond_db.nodes:
            for y in diamond_db.nodes:
                assert evaluate_pair(diamond_db, x, y, "a.b*") == (
                    (x, y) in full
                )

    def test_pair_epsilon(self, diamond_db):
        assert evaluate_pair(diamond_db, "s", "s", "a*")
        assert not evaluate_pair(diamond_db, "s", "t", "%eps")

    def test_pair_on_long_chain(self):
        # Bidirectional search must meet in the middle of the chain.
        labels = ["a"] * 30
        db = GraphDB()
        for i, label in enumerate(labels):
            db.add_edge(f"x{i}", label, f"x{i + 1}")
        assert evaluate_pair(db, "x0", "x30", "a*")
        assert not evaluate_pair(db, "x30", "x0", "a*")
        assert not evaluate_pair(db, "x0", "x30", "a.a")


class TestCompileCache:
    def test_cache_hit_on_repeated_evaluation(self, diamond_db):
        compile_cache_clear()
        query = RPQ("a.b*")
        evaluate(diamond_db, query)
        first = compile_cache_info()
        evaluate(diamond_db, query)
        second = compile_cache_info()
        assert first["misses"] == 1
        assert second["hits"] == first["hits"] + 1
        assert second["misses"] == first["misses"]

    def test_cache_miss_on_different_label_domain(self, diamond_db):
        compile_cache_clear()
        query = RPQ("a.b*")
        evaluate(diamond_db, query)
        other = GraphDB([("u", "a", "v")])  # different label domain
        evaluate(other, query)
        info = compile_cache_info()
        assert info["misses"] == 2

    def test_cache_key_includes_theory(self):
        compile_cache_clear()
        db = GraphDB([("x", "a", "y")])
        query = RPQ("a").as_formula_query()
        t1 = Theory(domain={"a"})
        t2 = Theory(domain={"a", "b"})
        evaluate(db, query, t1)
        evaluate(db, query, t2)
        assert compile_cache_info()["misses"] == 2


class TestCompiledAutomaton:
    def test_formula_symbols_resolved_at_compile_time(self):
        from repro.regex.ast import sym

        theory = Theory(domain={"a", "b", "c"}, predicates={"P": {"a", "b"}})
        rpq = RPQ(sym(Pred("P")))
        compiled = compile_automaton(
            rpq.eps_free_nfa(), theory, frozenset({"a", "b", "c"})
        )
        labels = {
            label for row in compiled.table.values() for label in row
        }
        assert labels == {"a", "b"}  # "c" does not satisfy P

    def test_formula_without_theory_raises(self):
        from repro.regex.ast import sym

        rpq = RPQ(sym(Pred("P")))
        with pytest.raises(ValueError):
            compile_automaton(rpq.eps_free_nfa(), None, frozenset({"a"}))

    def test_plain_symbols_skips_theory_requirement(self):
        from repro.regex.ast import sym

        rpq = RPQ(sym(Pred("P")))
        compiled = compile_automaton(
            rpq.eps_free_nfa(),
            None,
            frozenset({Pred("P")}),
            plain_symbols=True,
        )
        assert isinstance(compiled, CompiledAutomaton)
        db = GraphDB([("x", Pred("P"), "y")])
        assert evaluate_all(db, compiled) == frozenset({("x", "y")})

    def test_reverse_table_mirrors_table(self):
        rpq = RPQ("a.b")
        compiled = compile_automaton(
            rpq.eps_free_nfa(), None, frozenset({"a", "b"})
        )
        forward = {
            (src, label, dst)
            for src, row in compiled.table.items()
            for label, dsts in row.items()
            for dst in dsts
        }
        backward = {
            (src, label, dst)
            for dst, row in compiled.rtable.items()
            for label, srcs in row.items()
            for src in srcs
        }
        assert forward == backward


class TestAgainstNaive:
    def test_small_worked_example(self):
        db = GraphDB(
            [
                ("1", "a", "2"),
                ("2", "b", "3"),
                ("3", "a", "1"),
                ("2", "a", "2"),
            ]
        )
        for query in ["a*", "a.b", "(a.b.a)*", "b+a.a"]:
            assert evaluate(db, query) == naive_evaluate(db, query)
