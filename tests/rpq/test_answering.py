"""View-based answering without base-data access (data integration)."""

import pytest

from repro.rpq import (
    GraphDB,
    RPQViews,
    Theory,
    answer_with_views,
    evaluate,
    rewrite_rpq,
    rewriting_is_complete_on,
    rewriting_is_sound_on,
)


@pytest.fixture
def theory():
    return Theory.trivial({"a", "b"})


@pytest.fixture
def views():
    return RPQViews({"q1": "a", "q2": "b"})


class TestAnswerWithViews:
    def test_answers_from_extensions_only(self, theory, views):
        result = rewrite_rpq("a.b", views, theory)
        # The mediator never sees a database — just view extensions.
        extensions = {
            "q1": [("u", "v"), ("w", "v")],
            "q2": [("v", "z")],
        }
        answers = answer_with_views(result, extensions)
        assert answers == frozenset({("u", "z"), ("w", "z")})

    def test_empty_extensions_give_no_answers(self, theory, views):
        result = rewrite_rpq("a.b", views, theory)
        assert answer_with_views(result, {"q1": [], "q2": []}) == frozenset()

    def test_star_rewriting_over_extensions(self, theory, views):
        result = rewrite_rpq("a*", views, theory)
        extensions = {"q1": [("x", "y"), ("y", "z")], "q2": []}
        answers = answer_with_views(result, extensions)
        assert ("x", "z") in answers  # q1.q1
        assert ("x", "x") in answers  # empty word: reflexive pairs

    def test_extensions_consistent_with_database(self, theory, views):
        # Extensions computed from a DB give the same answers as answer().
        db = GraphDB([("x", "a", "y"), ("y", "b", "z")])
        result = rewrite_rpq("a.b", views, theory)
        extensions = views.materialize(db, theory)
        assert answer_with_views(result, extensions) == result.answer(db)


class TestSoundnessHelpers:
    def test_sound_and_complete_when_exact(self, theory, views):
        db = GraphDB([("x", "a", "y"), ("y", "b", "z"), ("z", "a", "x")])
        result = rewrite_rpq("a.b", views, theory)
        assert result.is_exact()
        assert rewriting_is_sound_on(result, "a.b", db)
        assert rewriting_is_complete_on(result, "a.b", db)

    def test_incomplete_when_views_miss_labels(self, theory):
        views = RPQViews({"q1": "a"})
        db = GraphDB([("x", "a", "y"), ("x", "b", "z")])
        result = rewrite_rpq("a+b", views, theory)
        assert rewriting_is_sound_on(result, "a+b", db)
        assert not rewriting_is_complete_on(result, "a+b", db)

    def test_completeness_may_hold_incidentally(self, theory):
        # Rewriting not exact, but this DB has no 'b' edges at all.
        views = RPQViews({"q1": "a"})
        db = GraphDB([("x", "a", "y")])
        result = rewrite_rpq("a+b", views, theory)
        assert not result.is_exact()
        assert rewriting_is_complete_on(result, "a+b", db)
