"""Section 4.2 rewriting of RPQs: Theorems 4.1 and 4.2.

Theorem 4.1 makes semantic (all-databases) rewriting equivalent to
language-level matching containment, so the semantic side is validated on
concrete databases: answers obtained through the views are always contained
in the direct answers, with equality when the rewriting is exact.
"""

import random

import pytest

from repro.regex.ast import concat, star, sym
from repro.rpq import (
    RPQ,
    GraphDB,
    Pred,
    RPQViews,
    Theory,
    evaluate,
    path_graph,
    random_graph,
    rewrite_rpq,
    rewriting_is_complete_on,
    rewriting_is_sound_on,
)
from repro.regex.printer import to_string


@pytest.fixture
def trivial_theory():
    return Theory.trivial({"a", "b", "c"})


class TestPlainRewriting:
    """With a trivial theory the algorithm must coincide with Section 2."""

    def test_figure1_through_rpq_layer(self, trivial_theory):
        views = RPQViews({"e1": "a", "e2": "a.c*.b", "e3": "c"})
        result = rewrite_rpq("a.(b.a+c)*", views, trivial_theory)
        assert to_string(result.regex()) == "e2*.e1.e3*"
        assert result.is_exact()

    def test_example41(self, trivial_theory):
        views = RPQViews({"q1": "a", "q2": "b"})
        result = rewrite_rpq("a.(b+c)", views, trivial_theory)
        assert to_string(result.regex()) == "q1.q2"
        assert not result.is_exact()
        extended = RPQViews({"q1": "a", "q2": "b", "q3": "c"})
        exact = rewrite_rpq("a.(b+c)", extended, trivial_theory)
        assert to_string(exact.regex()) == "q1.(q2+q3)"
        assert exact.is_exact()

    def test_exactness_counterexample(self, trivial_theory):
        views = RPQViews({"q1": "a", "q2": "b"})
        result = rewrite_rpq("a.(b+c)", views, trivial_theory)
        witness = result.exactness_counterexample()
        assert witness is not None
        assert "c" in witness


class TestSoundnessOnDatabases:
    """Definition 4.3 checked on concrete databases."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_view_answers_contained_in_direct_answers(self, seed, trivial_theory):
        rng = random.Random(seed)
        db = random_graph(rng, 7, ["a", "b", "c"], 15)
        views = RPQViews({"q1": "a.b", "q2": "b", "q3": "c*"})
        q0 = RPQ("a.b.(b+c)*")
        result = rewrite_rpq(q0, views, trivial_theory)
        assert rewriting_is_sound_on(result, q0, db)

    def test_exact_rewriting_complete_on_databases(self, trivial_theory):
        views = RPQViews({"q1": "a", "q2": "b", "q3": "c"})
        q0 = RPQ("a.(b+c)")
        result = rewrite_rpq(q0, views, trivial_theory)
        assert result.is_exact()
        for seed in (4, 5):
            db = random_graph(random.Random(seed), 6, ["a", "b", "c"], 14)
            assert rewriting_is_sound_on(result, q0, db)
            assert rewriting_is_complete_on(result, q0, db)

    def test_answers_via_path_database(self, trivial_theory):
        # Theorem 4.1's canonical databases: single paths.
        views = RPQViews({"q1": "a", "q2": "b"})
        q0 = RPQ("a.b")
        result = rewrite_rpq(q0, views, trivial_theory)
        db = path_graph(["a", "b"])
        answers = result.answer(db)
        assert ("x0", "x2") in answers


class TestTheoryAwareRewriting:
    """The paper's motivating example: T |= forall x (A(x) -> B(x))."""

    @pytest.fixture
    def subsumption_theory(self):
        return Theory(
            domain={"a1", "a2", "b1"},
            predicates={"A": {"a1", "a2"}, "B": {"a1", "a2", "b1"}},
        )

    def test_maximal_rewriting_is_the_view(self, subsumption_theory):
        q0 = RPQ(sym(Pred("B")))
        views = RPQViews({"qA": RPQ(sym(Pred("A")))})
        result = rewrite_rpq(q0, views, subsumption_theory)
        assert to_string(result.regex()) == "qA"
        assert not result.is_exact()

    def test_symbol_level_rewriting_would_be_empty(self, subsumption_theory):
        # Treating formulas as opaque symbols loses the entailment: the
        # core algorithm over the formula alphabet returns empty.
        from repro.core import maximal_rewriting

        result = maximal_rewriting(
            sym(Pred("B")), {"qA": sym(Pred("A"))}
        )
        assert result.is_empty()

    def test_view_answers_sound_under_theory(self, subsumption_theory):
        db = GraphDB([("x", "a1", "y"), ("y", "b1", "z"), ("z", "a2", "w")])
        q0 = RPQ(sym(Pred("B")))
        views = RPQViews({"qA": RPQ(sym(Pred("A")))})
        result = rewrite_rpq(q0, views, subsumption_theory)
        via_views = result.answer(db)
        direct = evaluate(db, q0, subsumption_theory)
        assert via_views <= direct
        assert ("x", "y") in via_views
        assert ("y", "z") in direct - via_views  # b1 is not an A-edge

    def test_star_queries_under_theory(self, subsumption_theory):
        q0 = RPQ(star(sym(Pred("B"))))
        views = RPQViews({"qA": RPQ(sym(Pred("A")))})
        result = rewrite_rpq(q0, views, subsumption_theory)
        assert result.accepts(())
        assert result.accepts(("qA", "qA"))
        assert not result.is_exact()

    def test_equivalent_predicates_give_exact_rewriting(self):
        theory = Theory(domain={"a1", "a2"}, predicates={"A": {"a1", "a2"}, "B": {"a1", "a2"}})
        q0 = RPQ(sym(Pred("B")))
        views = RPQViews({"qA": RPQ(sym(Pred("A")))})
        result = rewrite_rpq(q0, views, theory)
        assert result.is_exact()


class TestResultObject:
    def test_stats_and_repr(self, trivial_theory):
        result = rewrite_rpq("a", RPQViews({"q1": "a"}), trivial_theory)
        assert "ad_states" in result.stats
        assert "RPQRewritingResult" in repr(result)

    def test_words_and_shortest(self, trivial_theory):
        result = rewrite_rpq("a.b*", RPQViews({"q1": "a", "q2": "b"}), trivial_theory)
        assert result.shortest_word() == ("q1",)
        assert ("q1", "q2") in set(result.words(max_length=2))

    def test_empty_rewriting(self, trivial_theory):
        result = rewrite_rpq("a", RPQViews({"q1": "b"}), trivial_theory)
        assert result.is_empty()
        assert result.shortest_word() is None
