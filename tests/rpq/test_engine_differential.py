"""Differential property tests: compiled engine vs the naive oracle.

The naive evaluator is a literal transcription of Definition 4.2 (one BFS
per source, per-edge matcher closure).  The engine must agree with it on
the full answer set for random graphs x random regexes, for plain-label
queries and theory/formula queries alike, and the single-source /
single-pair variants must be consistent projections of the full answer.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regex.ast import EMPTY, EPSILON, concat, star, sym, union
from repro.rpq import (
    RPQ,
    GraphDB,
    Pred,
    Theory,
    evaluate,
    evaluate_from,
    evaluate_pair,
    naive_evaluate,
)
from repro.rpq.formulas import TOP

from ..conftest import ALPHABET, regex_strategy

THEORY = Theory(
    domain=set(ALPHABET),
    predicates={"P": {"a", "b"}, "Q": {"c"}},
)


@st.composite
def graph_dbs(draw, alphabet=ALPHABET, max_nodes=6, max_edges=14):
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    nodes = [f"n{i}" for i in range(num_nodes)]
    edges = draw(
        st.lists(
            st.tuples(
                st.sampled_from(nodes),
                st.sampled_from(alphabet),
                st.sampled_from(nodes),
            ),
            max_size=max_edges,
        )
    )
    return GraphDB(edges, nodes=nodes)


def formula_regex_strategy(max_leaves: int = 6):
    """Regexes whose leaves mix plain labels, predicates, and wildcards."""
    leaves = st.one_of(
        st.sampled_from(
            [sym("a"), sym("c"), sym(Pred("P")), sym(Pred("Q")), sym(TOP)]
        ),
        st.just(EPSILON),
        st.just(EMPTY),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda pair: concat(*pair)),
            st.tuples(children, children).map(lambda pair: union(*pair)),
            children.map(star),
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)


@settings(max_examples=60, deadline=None)
@given(db=graph_dbs(), expr=regex_strategy(max_leaves=6))
def test_engine_matches_naive_on_plain_queries(db, expr):
    query = RPQ(expr)
    assert evaluate(db, query) == naive_evaluate(db, query)


@settings(max_examples=60, deadline=None)
@given(db=graph_dbs(), expr=formula_regex_strategy())
def test_engine_matches_naive_on_formula_queries(db, expr):
    query = RPQ(expr)
    assert evaluate(db, query, THEORY) == naive_evaluate(db, query, THEORY)


@settings(max_examples=40, deadline=None)
@given(db=graph_dbs(max_nodes=5, max_edges=10), expr=regex_strategy(max_leaves=5))
def test_single_source_is_a_projection_of_the_full_answer(db, expr):
    query = RPQ(expr)
    full = evaluate(db, query)
    for node in db.nodes:
        assert evaluate_from(db, node, query) == frozenset(
            y for x, y in full if x == node
        )


@settings(max_examples=40, deadline=None)
@given(db=graph_dbs(max_nodes=5, max_edges=10), expr=regex_strategy(max_leaves=5))
def test_pair_membership_matches_full_answer(db, expr):
    query = RPQ(expr)
    full = evaluate(db, query)
    for source in db.nodes:
        for target in db.nodes:
            assert evaluate_pair(db, source, target, query) == (
                (source, target) in full
            )


@settings(max_examples=30, deadline=None)
@given(db=graph_dbs(max_nodes=5, max_edges=10), expr=formula_regex_strategy(4))
def test_formula_single_source_matches_naive_projection(db, expr):
    query = RPQ(expr)
    naive = naive_evaluate(db, query, THEORY)
    for node in db.nodes:
        assert evaluate_from(db, node, query, THEORY) == frozenset(
            y for x, y in naive if x == node
        )


def test_formula_query_without_theory_still_raises():
    db = GraphDB([("x", "a", "y")])
    with pytest.raises(ValueError):
        evaluate(db, RPQ(sym(Pred("P"))))
    with pytest.raises(ValueError):
        naive_evaluate(db, RPQ(sym(Pred("P"))))
