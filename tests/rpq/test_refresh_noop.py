"""Regression: ``ParallelEvaluator.refresh`` must no-op on unchanged graphs.

Before the fix, every ``refresh()`` call rebuilt the partition and
bumped the snapshot generation even when the graph had not changed at
all — so a session refreshing on every store-version bump (the
documented usage) forced the next pooled sweep to re-pickle and re-ship
a byte-identical snapshot to every worker.  ``refresh()`` now consults
:attr:`~repro.rpq.graphdb.GraphDB.mutation_count` (which only moves on
*effective* mutations) and returns early: the generation, the cached
payload bytes, the partition object, and the worker pool all survive.
"""

import pytest

from repro.rpq import engine as engine_mod
from repro.rpq.graphdb import GraphDB
from repro.rpq.sharded import ParallelEvaluator


def _graph():
    db = GraphDB()
    for i in range(30):
        db.add_edge(f"n{i}", "a", f"n{(i + 1) % 30}")
        db.add_edge(f"n{i}", "b", f"n{(i * 3 + 2) % 30}")
    return db


def _compiled(db):
    from repro.rpq import RPQ

    return engine_mod.compile_automaton(
        RPQ("a.b").eps_free_nfa(), None, db.domain()
    )


@pytest.mark.parametrize("backend", ["bigint", "numpy"])
class TestNoOpRefresh:
    def test_generation_unchanged(self, backend):
        db = _graph()
        with ParallelEvaluator(db, 4, backend=backend) as ev:
            generation = ev.generation
            ev.refresh()
            ev.refresh()
            assert ev.generation == generation

    def test_partition_object_unchanged(self, backend):
        db = _graph()
        with ParallelEvaluator(db, 4, backend=backend) as ev:
            partition = ev.sharded if backend == "bigint" else ev._snapshot
            ev.refresh()
            after = ev.sharded if backend == "bigint" else ev._snapshot
            assert after is partition

    def test_noop_mutations_do_not_invalidate(self, backend):
        """Idempotent add/remove calls that change nothing structurally
        must not count as mutations."""
        db = _graph()
        with ParallelEvaluator(db, 4, backend=backend) as ev:
            generation = ev.generation
            db.add_edge("n0", "a", "n1")  # already present
            db.add_node("n0")  # already interned
            assert not db.remove_edge("n0", "a", "n99")  # never existed
            ev.refresh()
            assert ev.generation == generation

    def test_effective_mutation_still_refreshes(self, backend):
        db = _graph()
        compiled = _compiled(db)
        with ParallelEvaluator(db, 4, backend=backend) as ev:
            before = ev.evaluate_all_sorted(compiled)
            generation = ev.generation
            db.add_edge("n0", "a", "n15")
            ev.refresh()
            assert ev.generation == generation + 1
            after = ev.evaluate_all_sorted(compiled)
            assert after == engine_mod.evaluate_all_sorted(db, compiled)
            assert after != before

    def test_refresh_answers_stay_correct(self, backend):
        db = _graph()
        compiled = _compiled(db)
        with ParallelEvaluator(db, 3, backend=backend) as ev:
            ev.refresh()
            assert ev.evaluate_all_sorted(
                compiled
            ) == engine_mod.evaluate_all_sorted(db, compiled)


class TestPayloadReuse:
    def test_payload_bytes_survive_noop_refresh(self):
        """The pickled snapshot a post-refresh pool task carries must not
        be discarded by a refresh that changed nothing."""
        db = _graph()
        with ParallelEvaluator(db, 4, workers=2) as ev:
            # Force the evaluator into the carries-payload regime: one
            # effective refresh after construction.
            db.add_edge("n0", "a", "n20")
            ev.refresh()
            ev._payload_bytes = payload = b"sentinel-reused-payload"
            ev.refresh()  # no-op: must keep the cached payload
            assert ev._payload_bytes is payload
            db.add_edge("n1", "b", "n20")
            ev.refresh()  # effective: must drop it
            assert ev._payload_bytes is None

    def test_pool_identity_survives_refresh(self):
        db = _graph()
        compiled = _compiled(db)
        with ParallelEvaluator(db, 4, workers=2) as ev:
            expected = ev.evaluate_all_sorted(compiled)
            pool = ev._pool
            ev.refresh()
            assert ev._pool is pool
            assert ev.evaluate_all_sorted(compiled) == expected
            assert ev._pool is pool
