"""Graph database tests."""

import random

import pytest

from repro.rpq.graphdb import GraphDB, path_graph, random_graph


class TestBasics:
    def test_add_edge_registers_nodes_and_labels(self):
        db = GraphDB()
        db.add_edge("x", "a", "y")
        assert db.nodes == frozenset({"x", "y"})
        assert db.domain() == frozenset({"a"})
        assert db.num_edges == 1

    def test_duplicate_edges_stored_once(self):
        db = GraphDB()
        db.add_edge("x", "a", "y")
        db.add_edge("x", "a", "y")
        assert db.num_edges == 1

    def test_parallel_edges_different_labels(self):
        db = GraphDB()
        db.add_edge("x", "a", "y")
        db.add_edge("x", "b", "y")
        assert db.num_edges == 2
        assert db.successors("x", "a") == frozenset({"y"})
        assert db.successors("x", "b") == frozenset({"y"})

    def test_isolated_node(self):
        db = GraphDB()
        db.add_node("lonely")
        assert "lonely" in db.nodes
        assert list(db.out_edges("lonely")) == []

    def test_construct_from_triples(self):
        db = GraphDB([("x", "a", "y"), ("y", "b", "z")])
        assert db.num_edges == 2
        assert db.successors("y", "b") == frozenset({"z"})

    def test_edges_iterator(self):
        triples = {("x", "a", "y"), ("y", "b", "z")}
        db = GraphDB(triples)
        assert set(db.edges()) == triples

    def test_add_path(self):
        db = GraphDB()
        db.add_path("n0", ["a", "b"], ["n1", "n2"])
        assert db.has_path("n0", ["a", "b"])
        with pytest.raises(ValueError):
            db.add_path("n0", ["a"], [])

    def test_add_path_empty_registers_start_node(self):
        db = GraphDB()
        db.add_path("lonely", [], [])
        assert "lonely" in db.nodes
        assert db.num_edges == 0
        assert db.has_path("lonely", [])


class TestRemoveEdge:
    def test_remove_present_edge(self):
        db = GraphDB([("x", "a", "y"), ("y", "b", "z")])
        assert db.remove_edge("x", "a", "y")
        assert db.num_edges == 1
        assert db.successors("x", "a") == frozenset()
        assert ("x", "a", "y") not in db.to_triples()

    def test_remove_is_idempotent(self):
        db = GraphDB([("x", "a", "y")])
        assert db.remove_edge("x", "a", "y")
        assert not db.remove_edge("x", "a", "y")
        assert not db.remove_edge("x", "a", "unknown")
        assert not db.remove_edge("x", "zzz", "y")
        assert db.num_edges == 0

    def test_nodes_and_ids_survive_removal(self):
        db = GraphDB([("x", "a", "y")])
        x_id, y_id = db.node_id("x"), db.node_id("y")
        db.remove_edge("x", "a", "y")
        assert db.nodes == frozenset({"x", "y"})
        assert db.node_id("x") == x_id and db.node_id("y") == y_id

    def test_reverse_index_is_cleaned(self):
        db = GraphDB([("x", "a", "y"), ("w", "a", "y")])
        db.remove_edge("x", "a", "y")
        assert db.predecessors_bulk({db.node_id("y")}, "a") == {db.node_id("w")}
        db.remove_edge("w", "a", "y")
        assert db.predecessors_bulk({db.node_id("y")}, "a") == set()
        assert "a" not in db.domain()

    def test_add_after_remove(self):
        db = GraphDB([("x", "a", "y")])
        db.remove_edge("x", "a", "y")
        db.add_edge("x", "a", "y")
        assert db.num_edges == 1
        assert db.successors("x", "a") == frozenset({"y"})


class TestTripleRoundTrip:
    def test_from_triples_to_triples_round_trip(self):
        triples = {("x", "a", "y"), ("y", "b", "z"), ("z", "a", "x")}
        db = GraphDB.from_triples(triples)
        assert db.to_triples() == triples
        rebuilt = GraphDB.from_triples(db.to_triples())
        assert rebuilt.to_triples() == triples
        assert rebuilt.nodes == db.nodes

    def test_to_triples_drops_isolated_nodes(self):
        db = GraphDB([("x", "a", "y")])
        db.add_node("island")
        assert db.to_triples() == {("x", "a", "y")}
        assert "island" not in GraphDB.from_triples(db.to_triples()).nodes


class TestIndexedBackend:
    def test_node_ids_are_dense_and_stable(self):
        db = GraphDB([("x", "a", "y"), ("y", "a", "z")])
        ids = {db.node_id(n) for n in ("x", "y", "z")}
        assert ids == {0, 1, 2}
        for node in db.nodes:
            assert db.node_at(db.node_id(node)) == node

    def test_node_id_unknown_raises(self):
        with pytest.raises(KeyError):
            GraphDB().node_id("ghost")

    def test_successors_bulk(self):
        db = GraphDB(
            [("x", "a", "y"), ("x", "a", "z"), ("y", "a", "z"), ("y", "b", "x")]
        )
        frontier = {db.node_id("x"), db.node_id("y")}
        expanded = db.successors_bulk(frontier, "a")
        assert expanded == {db.node_id("y"), db.node_id("z")}
        assert db.successors_bulk(frontier, "missing") == set()

    def test_predecessors_bulk_mirrors_successors(self):
        db = GraphDB([("x", "a", "y"), ("z", "a", "y"), ("y", "a", "x")])
        front = {db.node_id("y")}
        assert db.predecessors_bulk(front, "a") == {
            db.node_id("x"),
            db.node_id("z"),
        }

    def test_label_indexes_agree_with_edges(self):
        db = GraphDB([("x", "a", "y"), ("x", "b", "y"), ("y", "a", "x")])
        for label in db.domain():
            out_index = db.label_out_index(label)
            in_index = db.label_in_index(label)
            forward = {
                (s, t) for s, targets in out_index.items() for t in targets
            }
            backward = {
                (s, t) for t, sources in in_index.items() for s in sources
            }
            assert forward == backward


class TestHasPath:
    def test_path_exists(self):
        db = GraphDB([("x", "a", "y"), ("y", "b", "z")])
        assert db.has_path("x", ["a", "b"])
        assert not db.has_path("x", ["b"])
        assert db.has_path("x", [])

    def test_branching_paths(self):
        db = GraphDB([("x", "a", "y1"), ("x", "a", "y2"), ("y2", "b", "z")])
        assert db.has_path("x", ["a", "b"])


class TestGenerators:
    def test_path_graph(self):
        db = path_graph(["a", "b", "c"])
        assert db.num_nodes == 4
        assert db.has_path("x0", ["a", "b", "c"])

    def test_empty_path_graph(self):
        db = path_graph([])
        assert db.num_nodes == 1

    def test_random_graph_reproducible(self):
        left = random_graph(random.Random(3), 10, ["a", "b"], 20)
        right = random_graph(random.Random(3), 10, ["a", "b"], 20)
        assert set(left.edges()) == set(right.edges())

    def test_random_graph_shape(self):
        db = random_graph(random.Random(5), 6, ["a"], 12)
        assert db.num_nodes == 6
        assert db.num_edges <= 12
