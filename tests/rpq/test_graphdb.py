"""Graph database tests."""

import random

import pytest

from repro.rpq.graphdb import GraphDB, path_graph, random_graph


class TestBasics:
    def test_add_edge_registers_nodes_and_labels(self):
        db = GraphDB()
        db.add_edge("x", "a", "y")
        assert db.nodes == frozenset({"x", "y"})
        assert db.domain() == frozenset({"a"})
        assert db.num_edges == 1

    def test_duplicate_edges_stored_once(self):
        db = GraphDB()
        db.add_edge("x", "a", "y")
        db.add_edge("x", "a", "y")
        assert db.num_edges == 1

    def test_parallel_edges_different_labels(self):
        db = GraphDB()
        db.add_edge("x", "a", "y")
        db.add_edge("x", "b", "y")
        assert db.num_edges == 2
        assert db.successors("x", "a") == frozenset({"y"})
        assert db.successors("x", "b") == frozenset({"y"})

    def test_isolated_node(self):
        db = GraphDB()
        db.add_node("lonely")
        assert "lonely" in db.nodes
        assert list(db.out_edges("lonely")) == []

    def test_construct_from_triples(self):
        db = GraphDB([("x", "a", "y"), ("y", "b", "z")])
        assert db.num_edges == 2
        assert db.successors("y", "b") == frozenset({"z"})

    def test_edges_iterator(self):
        triples = {("x", "a", "y"), ("y", "b", "z")}
        db = GraphDB(triples)
        assert set(db.edges()) == triples

    def test_add_path(self):
        db = GraphDB()
        db.add_path("n0", ["a", "b"], ["n1", "n2"])
        assert db.has_path("n0", ["a", "b"])
        with pytest.raises(ValueError):
            db.add_path("n0", ["a"], [])


class TestHasPath:
    def test_path_exists(self):
        db = GraphDB([("x", "a", "y"), ("y", "b", "z")])
        assert db.has_path("x", ["a", "b"])
        assert not db.has_path("x", ["b"])
        assert db.has_path("x", [])

    def test_branching_paths(self):
        db = GraphDB([("x", "a", "y1"), ("x", "a", "y2"), ("y2", "b", "z")])
        assert db.has_path("x", ["a", "b"])


class TestGenerators:
    def test_path_graph(self):
        db = path_graph(["a", "b", "c"])
        assert db.num_nodes == 4
        assert db.has_path("x0", ["a", "b", "c"])

    def test_empty_path_graph(self):
        db = path_graph([])
        assert db.num_nodes == 1

    def test_random_graph_reproducible(self):
        left = random_graph(random.Random(3), 10, ["a", "b"], 20)
        right = random_graph(random.Random(3), 10, ["a", "b"], 20)
        assert set(left.edges()) == set(right.edges())

    def test_random_graph_shape(self):
        db = random_graph(random.Random(5), 6, ["a"], 12)
        assert db.num_nodes == 6
        assert db.num_edges <= 12
