"""Seeded-determinism and shape-invariant tests for the workload module.

The generator's contract is that ``(family, seed, size)`` fully
determines the graph — same bytes in any process, regardless of
``PYTHONHASHSEED`` — and that each family actually has the shape its
name promises.  Cross-process determinism is checked the only honest
way: a fresh subprocess regenerates every family and must reproduce the
parent's canonical signatures exactly.
"""

import json
import subprocess
import sys
from math import isqrt
from pathlib import Path

import pytest

from repro.regex.parser import parse
from repro.rpq import (
    FAMILIES,
    RPQ,
    graph_signature,
    make_graph,
    make_queries,
    make_update_stream,
    make_views,
    make_workload,
)
from repro.rpq.workload import graph_triples

SRC = Path(__file__).resolve().parent.parent.parent / "src"

_CHILD_SCRIPT = """
import json, sys
from repro.rpq import FAMILIES, graph_signature, make_graph, make_queries

seed, edges = int(sys.argv[1]), int(sys.argv[2])
out = {}
for family in FAMILIES:
    db = make_graph(family, seed, edges=edges)
    out[family] = {
        "signature": graph_signature(db),
        "queries": list(make_queries(family, seed, count=6)),
    }
print(json.dumps(out))
"""


def test_same_seed_reproduces_byte_identical_graphs_across_processes():
    """The subprocess round-trip: every family, regenerated from the seed
    in a fresh interpreter (fresh hash randomization), must hash to the
    same canonical signature and produce the same query mix."""
    seed, edges = 20260730, 120
    expected = {
        family: {
            "signature": graph_signature(make_graph(family, seed, edges=edges)),
            "queries": list(make_queries(family, seed, count=6)),
        }
        for family in FAMILIES
    }
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, str(seed), str(edges)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC), "PYTHONHASHSEED": "random"},
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert json.loads(proc.stdout) == expected


@pytest.mark.parametrize("family", FAMILIES)
def test_same_seed_same_graph_different_seed_different_graph(family):
    base = graph_signature(make_graph(family, seed=11, edges=90))
    again = graph_signature(make_graph(family, seed=11, edges=90))
    assert base == again
    # Seeds must actually steer generation.  The grid family's only
    # degree of freedom is its aspect ratio, so any *single* pair of
    # seeds may collide; a handful of seeds must not.
    others = {
        graph_signature(make_graph(family, seed=seed, edges=90))
        for seed in range(12, 18)
    }
    assert len(others | {base}) >= 2


@pytest.mark.parametrize("family", FAMILIES)
def test_edge_floor_is_honoured(family):
    for edges in (1, 7, 50, 333):
        assert make_graph(family, seed=3, edges=edges).num_edges >= edges


@pytest.mark.parametrize("family", FAMILIES)
def test_queries_parse_and_reproduce(family):
    queries = make_queries(family, seed=5, count=10)
    assert queries == make_queries(family, seed=5, count=10)
    assert queries != make_queries(family, seed=6, count=10)
    for query in queries:
        parse(query)  # must be valid concrete syntax
        RPQ(query)
    bounded = make_queries(family, seed=5, count=10, include_starred=False)
    assert all("*" not in query for query in bounded)


# ----------------------------------------------------------------------
# Family shape invariants
# ----------------------------------------------------------------------


def test_chain_is_a_single_path():
    db = make_graph("chain", seed=9, edges=40)
    assert db.num_edges == 40
    assert db.num_nodes == 41
    for source, _label, target in db.edges():
        assert db.node_id(target) == db.node_id(source) + 1


def test_grid_is_a_complete_lattice():
    db = make_graph("grid", seed=9, edges=100)
    # Recover the column count from n0's down-edge (d jumps one row).
    down_targets = [t for label, t in db.out_edges("n0") if label == "d"]
    assert len(down_targets) == 1
    cols = db.node_id(down_targets[0])
    rows = db.num_nodes // cols
    assert rows * cols == db.num_nodes
    assert db.num_edges == rows * (cols - 1) + (rows - 1) * cols
    for source, label, target in db.edges():
        source_id, target_id = db.node_id(source), db.node_id(target)
        if label == "r":
            assert target_id == source_id + 1
            assert source_id % cols < cols - 1  # never wraps a row
        else:
            assert label == "d"
            assert target_id == source_id + cols


def test_layered_dag_edges_advance_exactly_one_layer():
    db = make_graph("layered_dag", seed=9, edges=150)
    width = isqrt(db.num_nodes)
    assert width * width == db.num_nodes  # layers == width by construction
    for source, _label, target in db.edges():
        source_id, target_id = db.node_id(source), db.node_id(target)
        assert source_id < target_id  # topological by interning order
        assert target_id // width == source_id // width + 1


def test_scale_free_grows_hubs():
    """Preferential attachment must yield a hub-dominated degree skew."""
    db = make_graph("scale_free", seed=9, edges=3000)
    degree: dict[str, int] = {}
    for source, _label, target in db.edges():
        degree[source] = degree.get(source, 0) + 1
        degree[target] = degree.get(target, 0) + 1
    mean = 2 * db.num_edges / db.num_nodes
    assert max(degree.values()) >= 4 * mean


# ----------------------------------------------------------------------
# Bundles, views, canonical bytes
# ----------------------------------------------------------------------


def test_make_workload_bundles_match_components():
    workload = make_workload("grid", seed=4, edges=60, queries=5)
    assert workload.family == "grid"
    assert graph_signature(workload.graph) == graph_signature(
        make_graph("grid", seed=4, edges=60)
    )
    assert workload.queries == make_queries("grid", seed=4, count=5)
    assert workload.views == make_views("grid", seed=4)
    assert "grid" in repr(workload)


@pytest.mark.parametrize("family", FAMILIES)
def test_views_cover_every_label_elementarily(family):
    views = dict(make_views(family, seed=2))
    labels = {label for _s, label, _t in make_graph(family, 2, edges=30).edges()}
    for label in labels:
        assert views.get(f"v_{label}") == label
    for definition in views.values():
        parse(definition)


def test_graph_triples_are_sorted_and_complete():
    db = make_graph("scale_free", seed=1, edges=50)
    triples = list(graph_triples(db))
    assert triples == sorted(triples)
    assert len(triples) == db.num_edges


def test_signature_covers_interning_order():
    """Two graphs with equal edge sets but different node interning order
    must not share a signature (the engine sees different dense ids)."""
    from repro.rpq import GraphDB

    forward = GraphDB(nodes=["x", "y"], edges=[("x", "a", "y")])
    backward = GraphDB(nodes=["y", "x"], edges=[("x", "a", "y")])
    assert graph_signature(forward) != graph_signature(backward)


def test_bad_arguments_rejected():
    with pytest.raises(ValueError):
        make_graph("mystery", seed=0)
    with pytest.raises(ValueError):
        make_graph("chain", seed=0, edges=0)
    with pytest.raises(ValueError):
        make_queries("chain", seed=0, count=0)
    with pytest.raises(ValueError):
        make_views("mystery", seed=0)


# ----------------------------------------------------------------------
# Seeded update streams
# ----------------------------------------------------------------------

_STREAM_CHILD_SCRIPT = """
import json, sys
from repro.rpq import FAMILIES, make_update_stream

seed, count = int(sys.argv[1]), int(sys.argv[2])
out = {}
for family in FAMILIES:
    base = {"v_a": [("n0", "n1"), ("n1", "n2")]}
    ops = make_update_stream(
        family, seed, count=count, base=base, delete_fraction=0.4
    )
    out[family] = [[op.op, op.symbol, op.source, op.target] for op in ops]
print(json.dumps(out))
"""


def _replay(ops, base):
    """Apply a stream to a plain dict-of-sets model of the store."""
    present = {
        symbol: set(map(tuple, pairs)) for symbol, pairs in base.items()
    }
    for op in ops:
        tuples = present.setdefault(op.symbol, set())
        if op.op == "insert":
            assert (op.source, op.target) not in tuples, op
            tuples.add((op.source, op.target))
        else:
            assert op.op == "delete"
            assert (op.source, op.target) in tuples, op
            tuples.discard((op.source, op.target))
    return present


def test_update_stream_reproduces_across_processes():
    """Same generator contract as the graphs: a fresh interpreter with
    fresh hash randomization must emit the identical op sequence."""
    seed, count = 20260730, 25
    expected = {}
    for family in FAMILIES:
        base = {"v_a": [("n0", "n1"), ("n1", "n2")]}
        ops = make_update_stream(
            family, seed, count=count, base=base, delete_fraction=0.4
        )
        expected[family] = [[op.op, op.symbol, op.source, op.target] for op in ops]
    proc = subprocess.run(
        [sys.executable, "-c", _STREAM_CHILD_SCRIPT, str(seed), str(count)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC), "PYTHONHASHSEED": "random"},
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert json.loads(proc.stdout) == expected


@pytest.mark.parametrize("family", FAMILIES)
def test_update_stream_is_consistent_by_construction(family):
    """Every insert targets an absent tuple, every delete a present one
    (given the base), so each op is effective exactly once on replay."""
    base = {
        "v_a": [("n0", "n1"), ("n1", "n2"), ("n2", "n0")],
        "v_b": [("n0", "n2")],
    }
    ops = make_update_stream(
        family, seed=3, count=60, base=base, delete_fraction=0.5,
        symbols=("v_a", "v_b"),
    )
    assert len(ops) == 60
    _replay(ops, base)  # raises on any ineffective op
    assert {op.op for op in ops} == {"insert", "delete"}


@pytest.mark.parametrize("family", FAMILIES)
def test_update_stream_defaults_to_elementary_view_symbols(family):
    ops = make_update_stream(family, seed=1, count=10)
    views = dict(make_views(family, seed=1))
    assert all(op.symbol in views for op in ops)
    assert all(op.op == "insert" for op in ops)  # default: no deletes


def test_update_stream_delete_fraction_zero_is_insert_only():
    base = {"v_a": [("n0", "n1")]}
    ops = make_update_stream(
        "chain", seed=5, count=30, base=base, delete_fraction=0.0
    )
    assert all(op.op == "insert" for op in ops)
    final = _replay(ops, base)
    assert sum(len(pairs) for pairs in final.values()) == 31


def test_update_stream_reinsert_zero_is_backward_deterministic():
    """``reinsert_fraction=0.0`` consumes no randomness and stays out of
    the seed key, so streams are byte-identical to those generated
    before the knob existed (i.e. without passing it at all)."""
    base = {"v_a": [("n0", "n1"), ("n1", "n2"), ("n2", "n0")]}
    for family in FAMILIES:
        legacy = make_update_stream(
            family, seed=9, count=40, base=base, delete_fraction=0.5
        )
        explicit = make_update_stream(
            family, seed=9, count=40, base=base, delete_fraction=0.5,
            reinsert_fraction=0.0,
        )
        assert legacy == explicit


def test_update_stream_reinserts_previously_deleted_tuples():
    base = {
        "v_a": [(f"n{i}", f"n{i + 1}") for i in range(8)],
        "v_b": [(f"n{i + 1}", f"n{i}") for i in range(8)],
    }
    ops = make_update_stream(
        "grid", seed=4, count=80, base=base, delete_fraction=0.5,
        reinsert_fraction=1.0, symbols=("v_a", "v_b"),
    )
    _replay(ops, base)  # still effective at every step
    deleted = set()
    reinserts = 0
    for op in ops:
        key = (op.symbol, op.source, op.target)
        if op.op == "delete":
            deleted.add(key)
        elif key in deleted:
            reinserts += 1
            deleted.discard(key)
    assert reinserts > 0
    assert any(op.op == "delete" for op in ops)


def test_update_stream_reinsert_changes_the_stream():
    base = {"v_a": [(f"n{i}", f"n{i + 1}") for i in range(6)]}
    plain = make_update_stream(
        "chain", seed=8, count=50, base=base, delete_fraction=0.5
    )
    pressured = make_update_stream(
        "chain", seed=8, count=50, base=base, delete_fraction=0.5,
        reinsert_fraction=1.0,
    )
    assert plain != pressured


def test_update_stream_mints_fresh_nodes():
    ops = make_update_stream(
        "chain", seed=6, count=40, base={"v_a": [("n0", "n1")]},
        fresh_node_fraction=0.5,
    )
    assert any(
        op.source.startswith("u") or op.target.startswith("u") for op in ops
    )


def test_update_stream_saturated_pool_falls_back_to_fresh_nodes():
    """When every tuple over the pool already exists (and fresh minting
    is disabled), inserts must still make progress by minting a new
    source node instead of looping."""
    base = {"v": [("a", "b"), ("b", "a"), ("a", "a"), ("b", "b")]}
    ops = make_update_stream(
        "chain", seed=2, count=3, base=base,
        symbols=("v",), fresh_node_fraction=0.0,
    )
    assert all(op.op == "insert" for op in ops)
    assert any(op.source.startswith("u") for op in ops)
    _replay(ops, base)


def test_update_stream_bad_arguments_rejected():
    with pytest.raises(ValueError):
        make_update_stream("mystery", seed=0, count=5)
    with pytest.raises(ValueError):
        make_update_stream("chain", seed=0, count=0)
    with pytest.raises(ValueError):
        make_update_stream("chain", seed=0, count=5, delete_fraction=1.5)
    with pytest.raises(ValueError):
        make_update_stream("chain", seed=0, count=5, fresh_node_fraction=-0.1)
    with pytest.raises(ValueError):
        make_update_stream("chain", seed=0, count=5, reinsert_fraction=1.01)
    with pytest.raises(ValueError):
        make_update_stream("chain", seed=0, count=5, reinsert_fraction=-0.5)
    with pytest.raises(ValueError):
        make_update_stream("chain", seed=0, count=5, symbols=())


# ----------------------------------------------------------------------
# Traffic mixes (the serving half)
# ----------------------------------------------------------------------

_TRAFFIC_CHILD_SCRIPT = """
import json, sys
from repro.rpq.workload import FAMILIES, make_traffic_mix

seed, count = int(sys.argv[1]), int(sys.argv[2])
base = {"v_a": [("n0", "n1"), ("n1", "n2")], "v_b": [("n2", "n0")]}
out = {}
for family in FAMILIES:
    ops = make_traffic_mix(
        family, seed, count=count, base=base, write_fraction=0.3,
        batch_size=2, delete_fraction=0.4,
    )
    out[family] = [
        [
            op.kind, op.mode, op.query, op.source, op.target,
            [[u.op, u.symbol, u.source, u.target] for u in op.updates],
        ]
        for op in ops
    ]
print(json.dumps(out))
"""


def test_traffic_mix_reproduces_across_processes():
    from repro.rpq.workload import make_traffic_mix

    seed, count = 20260808, 30
    base = {"v_a": [("n0", "n1"), ("n1", "n2")], "v_b": [("n2", "n0")]}
    expected = {}
    for family in FAMILIES:
        ops = make_traffic_mix(
            family, seed, count=count, base=base, write_fraction=0.3,
            batch_size=2, delete_fraction=0.4,
        )
        expected[family] = [
            [
                op.kind, op.mode, op.query, op.source, op.target,
                [[u.op, u.symbol, u.source, u.target] for u in op.updates],
            ]
            for op in ops
        ]
    proc = subprocess.run(
        [sys.executable, "-c", _TRAFFIC_CHILD_SCRIPT, str(seed), str(count)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC), "PYTHONHASHSEED": "random"},
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert json.loads(proc.stdout) == expected


@pytest.mark.parametrize("family", FAMILIES)
def test_traffic_mix_update_batches_replay_consistently(family):
    """The mix's update batches, applied in stream order, are exactly
    one consistent make_update_stream: every op effective once."""
    from repro.rpq.workload import make_traffic_mix

    base = {
        "v_a": [("n0", "n1"), ("n1", "n2"), ("n2", "n0")],
        "v_b": [("n0", "n2")],
    }
    ops = make_traffic_mix(
        family, seed=7, count=60, base=base, write_fraction=0.4,
        batch_size=3, delete_fraction=0.5,
    )
    assert len(ops) == 60
    updates = [u for op in ops if op.kind == "update" for u in op.updates]
    assert updates, "a 0.4 write fraction over 60 requests produced no updates"
    _replay(updates, base)  # raises on any ineffective op
    for op in ops:
        if op.kind == "update":
            assert len(op.updates) == 3
            assert op.query is None
        else:
            assert op.updates == ()
            assert op.query


def test_traffic_mix_query_shapes_and_endpoints():
    from repro.rpq.workload import make_traffic_mix

    base = {"v_a": [("n0", "n1"), ("n1", "n2")]}
    nodes = {"n0", "n1", "n2"}
    ops = make_traffic_mix(
        "chain", seed=2, count=120, base=base, write_fraction=0.0,
        single_source_fraction=0.3, pair_fraction=0.2,
    )
    modes = {"all": 0, "single_source": 0, "pair": 0}
    for op in ops:
        assert op.kind == "query"
        modes[op.mode] += 1
        if op.mode == "single_source":
            assert op.source in nodes and op.target is None
        elif op.mode == "pair":
            assert op.source in nodes and op.target in nodes
        else:
            assert op.source is None and op.target is None
    assert all(modes.values()), modes
    for op in ops:
        RPQ(op.query)  # every emitted query parses


def test_traffic_mix_without_base_is_all_pairs_only():
    from repro.rpq.workload import make_traffic_mix

    ops = make_traffic_mix(
        "grid", seed=4, count=40, write_fraction=0.0,
        single_source_fraction=0.5, pair_fraction=0.5,
    )
    assert all(op.mode == "all" for op in ops)


def test_traffic_mix_explicit_queries_and_bad_arguments():
    from repro.rpq.workload import make_traffic_mix

    ops = make_traffic_mix(
        "chain", seed=1, count=10, queries=("a.b",), write_fraction=0.0
    )
    assert {op.query for op in ops} == {"a.b"}
    with pytest.raises(ValueError, match="at least one request"):
        make_traffic_mix("chain", seed=1, count=0)
    with pytest.raises(ValueError, match="unknown workload family"):
        make_traffic_mix("blob", seed=1, count=5)
    with pytest.raises(ValueError, match="batch_size"):
        make_traffic_mix("chain", seed=1, count=5, batch_size=0)
    with pytest.raises(ValueError, match="write_fraction"):
        make_traffic_mix("chain", seed=1, count=5, write_fraction=1.5)
    with pytest.raises(ValueError, match="must be <= 1"):
        make_traffic_mix(
            "chain", seed=1, count=5,
            single_source_fraction=0.7, pair_fraction=0.7,
        )
    with pytest.raises(ValueError, match="queries must not be empty"):
        make_traffic_mix("chain", seed=1, count=5, queries=())
