"""RPQ evaluation (Definition 4.2): direct labels and formula queries."""

import random

import pytest

from repro.regex.ast import concat, star, sym
from repro.rpq import (
    RPQ,
    GraphDB,
    Pred,
    Theory,
    ans,
    evaluate,
    evaluate_from,
    path_graph,
    random_graph,
)
from repro.rpq.formulas import TOP
from repro.automata.thompson import to_nfa
from repro.regex.parser import parse


@pytest.fixture
def city_db():
    db = GraphDB()
    db.add_edge("home", "rome", "hotel")
    db.add_edge("hotel", "bus", "center")
    db.add_edge("center", "trattoria", "dinner")
    db.add_edge("home", "paris", "louvre")
    db.add_edge("louvre", "bistro", "dinner2")
    return db


@pytest.fixture
def city_theory():
    return Theory(
        domain={"rome", "paris", "bus", "trattoria", "bistro"},
        predicates={
            "City": {"rome", "paris"},
            "Restaurant": {"trattoria", "bistro"},
        },
    )


class TestDirectLabelQueries:
    def test_single_edge(self, city_db):
        assert evaluate(city_db, "rome") == frozenset({("home", "hotel")})

    def test_concatenation(self, city_db):
        assert evaluate(city_db, "rome.bus") == frozenset({("home", "center")})

    def test_union_and_star(self, city_db):
        result = evaluate(city_db, "(rome+paris).(bus+bistro)*")
        assert ("home", "hotel") in result
        assert ("home", "center") in result
        assert ("home", "louvre") in result

    def test_epsilon_returns_all_nodes(self, city_db):
        result = evaluate(city_db, "%eps")
        assert result == frozenset((x, x) for x in city_db.nodes)

    def test_no_match(self, city_db):
        assert evaluate(city_db, "bus.rome") == frozenset()

    def test_on_path_graph(self):
        db = path_graph(["a", "b", "a"])
        assert ("x0", "x3") in evaluate(db, "a.b.a")
        assert ("x1", "x3") in evaluate(db, "b.a")

    def test_cyclic_graph(self):
        db = GraphDB([("x", "a", "y"), ("y", "a", "x")])
        result = evaluate(db, "(a.a)*")
        assert ("x", "x") in result
        assert ("y", "y") in result
        result_odd = evaluate(db, "a.(a.a)*")
        assert ("x", "y") in result_odd


class TestFormulaQueries:
    def test_intro_query_shape(self, city_db, city_theory):
        # _* . City . _* . Restaurant — the paper's introduction query,
        # lifted to predicates.
        expr = concat(
            star(sym(TOP)), sym(Pred("City")), star(sym(TOP)), sym(Pred("Restaurant"))
        )
        result = evaluate(city_db, RPQ(expr), city_theory)
        assert ("home", "dinner") in result
        assert ("home", "dinner2") in result
        assert ("hotel", "dinner") not in result  # no City edge on that path

    def test_pred_query(self, city_db, city_theory):
        result = evaluate(city_db, RPQ(sym(Pred("City"))), city_theory)
        assert result == frozenset({("home", "hotel"), ("home", "louvre")})

    def test_formula_query_requires_theory(self, city_db):
        with pytest.raises(ValueError):
            evaluate(city_db, RPQ(sym(Pred("City"))))

    def test_mixed_plain_and_formula_symbols(self, city_db, city_theory):
        expr = concat(sym("rome"), sym(TOP))
        result = evaluate(city_db, RPQ(expr), city_theory)
        assert result == frozenset({("home", "center")})


class TestAnsAndSingleSource:
    def test_ans_matches_evaluate_for_plain_queries(self, city_db):
        language = to_nfa(parse("rome.bus"))
        assert ans(language, city_db) == evaluate(city_db, "rome.bus")

    def test_evaluate_from(self, city_db):
        result = evaluate_from(city_db, "home", "(rome+paris)")
        assert result == frozenset({"hotel", "louvre"})

    def test_evaluate_from_unknown_node(self, city_db):
        with pytest.raises(KeyError):
            evaluate_from(city_db, "nowhere", "rome")

    def test_agreement_on_random_graphs(self):
        rng = random.Random(17)
        for _ in range(5):
            db = random_graph(rng, 6, ["a", "b"], 12)
            full = evaluate(db, "a.b*")
            for node in db.nodes:
                from_node = evaluate_from(db, node, "a.b*")
                assert from_node == frozenset(y for x, y in full if x == node)


class TestSemanticsAgainstBruteForce:
    def test_answers_match_path_enumeration(self):
        rng = random.Random(23)
        db = random_graph(rng, 5, ["a", "b"], 10)
        query = "a.(b+a)"
        expected = set()
        for x in db.nodes:
            for l1, m in db.out_edges(x):
                if l1 != "a":
                    continue
                for l2, y in db.out_edges(m):
                    if l2 in ("a", "b"):
                        expected.add((x, y))
        assert evaluate(db, query) == frozenset(expected)
