"""DeltaSweepState: bit-identical resumption of the all-pairs sweep.

The contract under test is stronger than equal answer sets: after any
sequence of insertions and deletions, the retained ``reached`` matrices
and ``answer_masks`` must equal — bit for bit — those of a state freshly
built on the updated graph (deletions go through delete-rederive, so
this pins that over-deletion is fully undone and true deletions are
fully applied).  Equal masks imply equal answers for *every future delta
too*, which is why the unit layer pins masks and leaves answer-level
comparison to the differential harness.
"""

import random

import pytest

from repro.rpq import RPQ, DeltaSweepState, GraphDB
from repro.rpq import engine as engine_mod

LABELS = ("a", "b", "c")


def compiled_for(query, labels=LABELS):
    return engine_mod.compile_automaton(
        RPQ(query).eps_free_nfa(), None, frozenset(labels)
    )


def assert_bit_identical(state, db, compiled):
    fresh = DeltaSweepState(db, compiled)
    assert state.answer_masks == fresh.answer_masks
    for automaton_state, row in fresh.reached.items():
        mine = state.reached.get(automaton_state, [0] * state.num_nodes)
        assert mine == row, f"reached[{automaton_state}] diverged"
    for automaton_state, row in state.reached.items():
        if automaton_state not in fresh.reached:
            # Rows a fresh sweep never materializes may linger in a
            # maintained state, but only as all-zero husks.
            assert not any(row), f"ghost bits in reached[{automaton_state}]"
    assert state.answers_sorted() == engine_mod.evaluate_all_sorted(db, compiled)
    assert state.answers() == engine_mod.evaluate_all(db, compiled)


class TestSingleInsertions:
    def test_edge_extending_a_path(self):
        db = GraphDB([("x", "a", "y")])
        compiled = compiled_for("a.b")
        state = DeltaSweepState(db, compiled)
        assert state.answers() == frozenset()
        db.add_edge("y", "b", "z")
        state.apply_insertions([("y", "b", "z")])
        assert state.answers() == frozenset({("x", "z")})
        assert_bit_identical(state, db, compiled)

    def test_new_seed_source(self):
        """An insert that gives a node its *first* matching out-edge must
        seed that node, not just push existing sources."""
        db = GraphDB(nodes=["x", "y"])
        compiled = compiled_for("a")
        state = DeltaSweepState(db, compiled)
        db.add_edge("x", "a", "y")
        state.apply_insertions([("x", "a", "y")])
        assert state.answers() == frozenset({("x", "y")})
        assert_bit_identical(state, db, compiled)

    def test_insert_closing_a_cycle_under_a_star(self):
        db = GraphDB([("x", "a", "y"), ("y", "a", "z")])
        compiled = compiled_for("a*")
        state = DeltaSweepState(db, compiled)
        db.add_edge("z", "a", "x")
        state.apply_insertions([("z", "a", "x")])
        nodes = {"x", "y", "z"}
        assert state.answers() == frozenset(
            (source, target) for source in nodes for target in nodes
        )
        assert_bit_identical(state, db, compiled)

    def test_unmatched_label_is_a_cheap_noop(self):
        db = GraphDB([("x", "a", "y")])
        compiled = compiled_for("a")
        state = DeltaSweepState(db, compiled)
        before = list(state.answer_masks)
        db.add_edge("x", "c", "y")
        state.apply_insertions([("x", "c", "y")])
        assert state.answer_masks == before
        assert_bit_identical(state, db, compiled)

    def test_reapplying_an_absorbed_edge_is_idempotent(self):
        db = GraphDB([("x", "a", "y")])
        compiled = compiled_for("a.b")
        state = DeltaSweepState(db, compiled)
        db.add_edge("y", "b", "z")
        state.apply_insertions([("y", "b", "z")])
        state.apply_insertions([("y", "b", "z")])
        assert state.edges_applied == 2
        assert state.answers() == frozenset({("x", "z")})
        assert_bit_identical(state, db, compiled)


class TestNodeGrowth:
    def test_insert_interning_new_nodes(self):
        db = GraphDB([("x", "a", "y")])
        compiled = compiled_for("a.b")
        state = DeltaSweepState(db, compiled)
        db.add_edge("y", "b", "brand_new")
        state.apply_insertions([("y", "b", "brand_new")])
        assert state.num_nodes == db.num_nodes == 3
        assert state.answers() == frozenset({("x", "brand_new")})
        assert_bit_identical(state, db, compiled)

    def test_new_nodes_get_their_epsilon_diagonal(self):
        db = GraphDB([("x", "a", "y")])
        compiled = compiled_for("a*")
        state = DeltaSweepState(db, compiled)
        db.add_edge("p", "b", "q")  # label outside the query: answers are
        state.apply_insertions([("p", "b", "q")])  # the diagonal only
        assert ("p", "p") in state.answers() and ("q", "q") in state.answers()
        assert_bit_identical(state, db, compiled)

    def test_state_built_on_empty_graph_grows(self):
        db = GraphDB()
        compiled = compiled_for("a")
        state = DeltaSweepState(db, compiled)
        assert state.answers() == frozenset()
        db.add_edge("x", "a", "y")
        state.apply_insertions([("x", "a", "y")])
        assert state.answers() == frozenset({("x", "y")})
        assert_bit_identical(state, db, compiled)


class TestBatches:
    def test_batch_matches_one_at_a_time(self):
        base = [("x", "a", "y"), ("y", "b", "z")]
        batch = [("z", "a", "x"), ("y", "a", "w"), ("w", "b", "x")]
        compiled = compiled_for("(a+b)*")

        db_batch = GraphDB(base)
        state_batch = DeltaSweepState(db_batch, compiled)
        for edge in batch:
            db_batch.add_edge(*edge)
        state_batch.apply_insertions(batch)

        db_single = GraphDB(base)
        state_single = DeltaSweepState(db_single, compiled)
        for edge in batch:
            db_single.add_edge(*edge)
            state_single.apply_insertions([edge])

        assert state_batch.answer_masks == state_single.answer_masks
        assert_bit_identical(state_batch, db_batch, compiled)

    def test_one_shot_generator_input(self):
        db = GraphDB([("x", "a", "y")])
        compiled = compiled_for("a.b")
        state = DeltaSweepState(db, compiled)
        edges = [("y", "b", "z"), ("y", "b", "w")]
        for edge in edges:
            db.add_edge(*edge)
        applied = state.apply_insertions(edge for edge in edges)
        assert applied == 2
        assert state.edges_applied == 2
        assert state.answers() == frozenset({("x", "z"), ("x", "w")})


class TestRandomized:
    @pytest.mark.parametrize("query", ["a", "a.b", "(a+b)*", "a.(b+c)*", "b*.c"])
    def test_random_insertion_sequences_stay_bit_identical(self, query):
        rng = random.Random(f"incremental-{query}")
        compiled = compiled_for(query)
        for _trial in range(15):
            node_count = rng.randrange(1, 10)
            nodes = [f"n{i}" for i in range(node_count)]
            db = GraphDB(nodes=nodes)
            for _ in range(rng.randrange(0, 2 * node_count)):
                db.add_edge(
                    rng.choice(nodes), rng.choice(LABELS), rng.choice(nodes)
                )
            state = DeltaSweepState(db, compiled)
            for step in range(rng.randrange(1, 10)):
                if rng.random() < 0.2:
                    nodes.append(f"fresh{step}")
                edge = (
                    rng.choice(nodes),
                    rng.choice(LABELS),
                    rng.choice(nodes),
                )
                db.add_edge(*edge)
                state.apply_insertions([edge])
                assert_bit_identical(state, db, compiled)


class TestDeletions:
    def test_single_delete_breaks_the_only_path(self):
        db = GraphDB([("x", "a", "y"), ("y", "b", "z")])
        compiled = compiled_for("a.b")
        state = DeltaSweepState(db, compiled)
        assert state.answers() == frozenset({("x", "z")})
        db.remove_edge("y", "b", "z")
        removed = state.apply_deletions([("y", "b", "z")])
        assert removed == 1
        assert state.edges_deleted == 1
        assert state.answers() == frozenset()
        assert_bit_identical(state, db, compiled)

    def test_redundant_path_is_rederived_not_lost(self):
        """Over-deletion must be undone when an alternate derivation
        survives; the counter proves re-derivation actually ran."""
        db = GraphDB(
            [("x", "a", "y"), ("x", "a", "w"), ("y", "b", "z"), ("w", "b", "z")]
        )
        compiled = compiled_for("a.b")
        state = DeltaSweepState(db, compiled)
        db.remove_edge("y", "b", "z")
        state.apply_deletions([("y", "b", "z")])
        assert state.answers() == frozenset({("x", "z")})
        assert state.overdeleted_bits > 0
        assert state.rederived_bits > 0
        assert_bit_identical(state, db, compiled)

    def test_delete_inside_a_cycle_under_a_star(self):
        db = GraphDB([("x", "a", "y"), ("y", "a", "z"), ("z", "a", "x")])
        compiled = compiled_for("a*")
        state = DeltaSweepState(db, compiled)
        db.remove_edge("z", "a", "x")
        state.apply_deletions([("z", "a", "x")])
        answers = state.answers()
        assert ("x", "z") in answers and ("z", "x") not in answers
        assert ("z", "z") in answers  # epsilon diagonal survives
        assert_bit_identical(state, db, compiled)

    def test_deleting_a_nodes_last_edge_keeps_its_diagonal(self):
        db = GraphDB([("x", "a", "y")])
        compiled = compiled_for("a*")
        state = DeltaSweepState(db, compiled)
        db.remove_edge("x", "a", "y")
        state.apply_deletions([("x", "a", "y")])
        assert state.answers() == frozenset({("x", "x"), ("y", "y")})
        assert_bit_identical(state, db, compiled)

    def test_unmatched_label_is_a_cheap_noop(self):
        db = GraphDB([("x", "a", "y"), ("x", "c", "y")])
        compiled = compiled_for("a")
        state = DeltaSweepState(db, compiled)
        before = list(state.answer_masks)
        db.remove_edge("x", "c", "y")
        state.apply_deletions([("x", "c", "y")])
        assert state.answer_masks == before
        assert state.overdeleted_bits == 0
        assert_bit_identical(state, db, compiled)

    def test_batch_delete_of_a_chained_pair(self):
        """Both edges of one derivation deleted in a single batch — the
        candidate collection must read intact masks for each edge."""
        db = GraphDB(
            [("x", "a", "y"), ("y", "b", "z"), ("x", "a", "p"), ("p", "b", "q")]
        )
        compiled = compiled_for("a.b")
        state = DeltaSweepState(db, compiled)
        batch = [("x", "a", "y"), ("y", "b", "z")]
        for edge in batch:
            db.remove_edge(*edge)
        state.apply_deletions(batch)
        assert state.edges_deleted == 2
        assert state.answers() == frozenset({("x", "q")})
        assert_bit_identical(state, db, compiled)

    def test_delete_then_reinsert_roundtrips(self):
        db = GraphDB([("x", "a", "y"), ("y", "b", "z")])
        compiled = compiled_for("a.b")
        state = DeltaSweepState(db, compiled)
        before = list(state.answer_masks)
        db.remove_edge("x", "a", "y")
        state.apply_deletions([("x", "a", "y")])
        db.add_edge("x", "a", "y")
        state.apply_insertions([("x", "a", "y")])
        assert state.answer_masks == before
        assert_bit_identical(state, db, compiled)

    def test_repr_reports_deletions(self):
        db = GraphDB([("x", "a", "y")])
        state = DeltaSweepState(db, compiled_for("a"))
        db.remove_edge("x", "a", "y")
        state.apply_deletions([("x", "a", "y")])
        assert "edges_deleted=1" in repr(state)


class TestRandomizedDeletions:
    @pytest.mark.parametrize("query", ["a", "a.b", "(a+b)*", "a.(b+c)*", "b*.c"])
    def test_random_mixed_sequences_stay_bit_identical(self, query):
        rng = random.Random(f"incremental-dred-{query}")
        compiled = compiled_for(query)
        for _trial in range(15):
            node_count = rng.randrange(2, 10)
            nodes = [f"n{i}" for i in range(node_count)]
            db = GraphDB(nodes=nodes)
            present = set()
            for _ in range(rng.randrange(1, 3 * node_count)):
                edge = (
                    rng.choice(nodes), rng.choice(LABELS), rng.choice(nodes)
                )
                db.add_edge(*edge)
                present.add(edge)
            state = DeltaSweepState(db, compiled)
            for _step in range(rng.randrange(1, 12)):
                if present and rng.random() < 0.45:
                    edge = rng.choice(sorted(present))
                    present.discard(edge)
                    db.remove_edge(*edge)
                    state.apply_deletions([edge])
                else:
                    edge = (
                        rng.choice(nodes), rng.choice(LABELS), rng.choice(nodes)
                    )
                    db.add_edge(*edge)
                    present.add(edge)
                    state.apply_insertions([edge])
                assert_bit_identical(state, db, compiled)


class TestErrors:
    def test_unknown_node_raises_keyerror(self):
        """Edges must be applied to the graph before being absorbed."""
        db = GraphDB([("x", "a", "y")])
        state = DeltaSweepState(db, compiled_for("a"))
        with pytest.raises(KeyError):
            state.apply_insertions([("ghost", "a", "y")])

    def test_deleting_an_unknown_node_raises_keyerror(self):
        db = GraphDB([("x", "a", "y")])
        state = DeltaSweepState(db, compiled_for("a"))
        with pytest.raises(KeyError):
            state.apply_deletions([("ghost", "a", "y")])

    def test_repr_reports_progress(self):
        db = GraphDB([("x", "a", "y")])
        state = DeltaSweepState(db, compiled_for("a"))
        db.add_edge("x", "a", "x")
        state.apply_insertions([("x", "a", "x")])
        assert "edges_applied=1" in repr(state)
