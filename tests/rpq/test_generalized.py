"""Generalized path queries (Section 5): evaluation, rewriting, joins."""

import random

import pytest

from repro.rpq import GraphDB, RPQViews, Theory, evaluate, random_graph
from repro.rpq.generalized import (
    GeneralizedPathQuery,
    evaluate_gpq,
    rewrite_gpq,
)


@pytest.fixture
def theory():
    return Theory.trivial({"a", "b", "c"})


@pytest.fixture
def db():
    return GraphDB(
        [
            ("n0", "a", "n1"),
            ("n1", "b", "n2"),
            ("n2", "c", "n3"),
            ("n1", "b", "n4"),
            ("n4", "c", "n3"),
        ]
    )


class TestConstruction:
    def test_of_builds_components(self):
        gpq = GeneralizedPathQuery.of("a.b", "c*")
        assert gpq.arity == 3

    def test_needs_components(self):
        with pytest.raises(ValueError):
            GeneralizedPathQuery(())


class TestEvaluation:
    def test_binary_case_equals_rpq(self, db, theory):
        gpq = GeneralizedPathQuery.of("a.b")
        assert evaluate_gpq(db, gpq, theory) == evaluate(db, "a.b", theory)

    def test_ternary_join(self, db, theory):
        gpq = GeneralizedPathQuery.of("a", "b")
        result = evaluate_gpq(db, gpq, theory)
        assert ("n0", "n1", "n2") in result
        assert ("n0", "n1", "n4") in result
        assert len(result) == 2

    def test_four_way_join(self, db, theory):
        gpq = GeneralizedPathQuery.of("a", "b", "c")
        result = evaluate_gpq(db, gpq, theory)
        assert result == frozenset(
            {("n0", "n1", "n2", "n3"), ("n0", "n1", "n4", "n3")}
        )

    def test_star_component_allows_same_node(self, db, theory):
        gpq = GeneralizedPathQuery.of("a", "b*")
        result = evaluate_gpq(db, gpq, theory)
        assert ("n0", "n1", "n1") in result  # empty b-path
        assert ("n0", "n1", "n2") in result

    def test_empty_component_kills_join(self, db, theory):
        gpq = GeneralizedPathQuery.of("a", "a")  # no a-edge after n1
        assert evaluate_gpq(db, gpq, theory) == frozenset()


class TestRewriting:
    def test_componentwise_rewriting_sound(self, db, theory):
        views = RPQViews({"q1": "a", "q2": "b", "q3": "c"})
        gpq = GeneralizedPathQuery.of("a", "b.c")
        rewriting = rewrite_gpq(gpq, views, theory)
        assert rewriting.is_exact()
        assert rewriting.answer(db) == evaluate_gpq(db, gpq, theory)

    def test_inexact_component_detected(self, theory):
        views = RPQViews({"q1": "a"})
        gpq = GeneralizedPathQuery.of("a", "b")
        rewriting = rewrite_gpq(gpq, views, theory)
        assert not rewriting.is_exact()
        assert rewriting.is_empty()  # the b-component has no rewriting

    def test_answers_always_sound_on_random_graphs(self, theory):
        views = RPQViews({"q1": "a.b", "q2": "c"})
        gpq = GeneralizedPathQuery.of("a.b", "c*")
        rewriting = rewrite_gpq(gpq, views, theory)
        for seed in (1, 2, 3):
            db = random_graph(random.Random(seed), 6, ["a", "b", "c"], 14)
            via_views = rewriting.answer(db)
            direct = evaluate_gpq(db, gpq, theory)
            assert via_views <= direct

    def test_component_regexes_exposed(self, theory):
        views = RPQViews({"q1": "a", "q2": "b"})
        gpq = GeneralizedPathQuery.of("a", "b")
        rewriting = rewrite_gpq(gpq, views, theory)
        rendered = [str(r) for r in rewriting.regexes()]
        assert rendered == ["q1", "q2"]

    def test_answer_with_precomputed_extensions(self, db, theory):
        views = RPQViews({"q1": "a", "q2": "b"})
        gpq = GeneralizedPathQuery.of("a", "b")
        rewriting = rewrite_gpq(gpq, views, theory)
        extensions = views.materialize(db, theory)
        assert rewriting.answer(db, extensions=extensions) == evaluate_gpq(
            db, gpq, theory
        )
