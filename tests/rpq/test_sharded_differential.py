"""Randomized differential harness: sharded evaluation vs engine vs naive.

Three implementations answer every RPQ in this repo — the naive
per-source oracle, the compiled single-sweep engine, and the sharded
:class:`~repro.rpq.sharded.ParallelEvaluator` — and they must agree
*bit for bit* on every (graph, query, shard count, worker count)
combination, on all three entry points (all-pairs, single-source,
single-pair).  Hypothesis draws workload family x seed x shard count
k in {1, 2, 3, 7}; graphs come from the seeded workload generator, so
every family's shape (path, mesh, hubs, layers) is exercised, and any
failure replays from its seed.

All-pairs answers are compared as *sorted lists*, not sets, pinning the
documented ordering guarantee (sorted by dense node id, identical across
shard counts) at the same time as the answer sets themselves.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpq import (
    FAMILIES,
    RPQ,
    GraphDB,
    ParallelEvaluator,
    Pred,
    ShardedGraphDB,
    Theory,
    make_graph,
    make_queries,
    naive_evaluate,
    sort_pairs,
)
from repro.rpq import engine as engine_mod
from repro.rpq.formulas import TOP
from repro.regex.ast import concat, star, sym

SHARD_COUNTS = (1, 2, 3, 7)


def compiled_for(db, query, theory=None):
    rpq = query if isinstance(query, RPQ) else RPQ(query)
    return engine_mod.compile_automaton(rpq.eps_free_nfa(), theory, db.domain())


@st.composite
def workload_cases(draw, max_edges=40):
    """(family, graph, query) drawn through the seeded workload module."""
    family = draw(st.sampled_from(FAMILIES))
    seed = draw(st.integers(min_value=0, max_value=999_999))
    edges = draw(st.integers(min_value=4, max_value=max_edges))
    graph = make_graph(family, seed, edges=edges)
    queries = make_queries(family, seed, count=4)
    query = queries[draw(st.integers(min_value=0, max_value=3))]
    return family, graph, query


@settings(max_examples=60, deadline=None)
@given(case=workload_cases(), num_shards=st.sampled_from(SHARD_COUNTS))
def test_all_pairs_identical_across_shard_counts(case, num_shards):
    """ParallelEvaluator == engine == naive, as sorted lists."""
    _family, db, query = case
    compiled = compiled_for(db, query)
    expected = engine_mod.evaluate_all_sorted(db, compiled)
    assert expected == sort_pairs(db, naive_evaluate(db, RPQ(query)))
    evaluator = ParallelEvaluator(db, num_shards=num_shards)
    assert evaluator.evaluate_all_sorted(compiled) == expected
    assert evaluator.evaluate_all(compiled) == frozenset(expected)


@settings(max_examples=40, deadline=None)
@given(case=workload_cases(max_edges=24), num_shards=st.sampled_from(SHARD_COUNTS))
def test_single_source_identical_across_shard_counts(case, num_shards):
    _family, db, query = case
    compiled = compiled_for(db, query)
    evaluator = ParallelEvaluator(db, num_shards=num_shards)
    full = engine_mod.evaluate_all(db, compiled)
    node_at = db.node_at
    probes = [node_at(i) for i in range(0, db.num_nodes, max(1, db.num_nodes // 5))]
    for source in probes:
        expected = frozenset(y for x, y in full if x == source)
        assert evaluator.evaluate_single_source(compiled, source) == expected
        assert engine_mod.evaluate_single_source(db, compiled, source) == expected


@settings(max_examples=40, deadline=None)
@given(case=workload_cases(max_edges=24), num_shards=st.sampled_from(SHARD_COUNTS))
def test_single_pair_identical_across_shard_counts(case, num_shards):
    _family, db, query = case
    compiled = compiled_for(db, query)
    evaluator = ParallelEvaluator(db, num_shards=num_shards)
    full = engine_mod.evaluate_all(db, compiled)
    node_at = db.node_at
    step = max(1, db.num_nodes // 4)
    probes = [node_at(i) for i in range(0, db.num_nodes, step)]
    for source in probes:
        for target in probes:
            expected = (source, target) in full
            assert evaluator.evaluate_pair(compiled, source, target) == expected
            assert (
                engine_mod.evaluate_pair(db, compiled, source, target) == expected
            )


@settings(max_examples=25, deadline=None)
@given(
    case=workload_cases(max_edges=20),
    num_shards=st.sampled_from((2, 3)),
)
def test_pool_workers_match_sequential_fallback(case, num_shards):
    """Process-pool execution is bit-identical to the sequential path."""
    _family, db, query = case
    compiled = compiled_for(db, query)
    sequential = ParallelEvaluator(db, num_shards=num_shards, workers=1)
    pooled = ParallelEvaluator(db, num_shards=num_shards, workers=2)
    assert pooled.evaluate_all_sorted(compiled) == sequential.evaluate_all_sorted(
        compiled
    )


# ----------------------------------------------------------------------
# Corner cases the strategies cannot be trusted to hit every run
# ----------------------------------------------------------------------


def test_more_shards_than_nodes_leaves_empty_shards():
    db = make_graph("chain", seed=1, edges=3)  # 4 nodes
    compiled = compiled_for(db, "a.b")
    expected = engine_mod.evaluate_all_sorted(db, compiled)
    evaluator = ParallelEvaluator(db, num_shards=50)
    assert 0 in evaluator.sharded.shard_sizes()
    assert evaluator.evaluate_all_sorted(compiled) == expected


def test_all_cut_edges_partition_still_exact():
    """k = num_nodes on a chain: every single edge crosses a boundary."""
    db = make_graph("chain", seed=7, edges=12)
    sharded = ShardedGraphDB(db, db.num_nodes)
    assert sharded.num_internal_edges == 0
    assert sharded.num_cut_edges == db.num_edges
    for query in make_queries("chain", seed=7, count=4):
        compiled = compiled_for(db, query)
        evaluator = ParallelEvaluator(db, num_shards=db.num_nodes)
        assert evaluator.evaluate_all_sorted(
            compiled
        ) == engine_mod.evaluate_all_sorted(db, compiled)


def test_empty_graph_and_edgeless_graph():
    empty = GraphDB()
    lonely = GraphDB(nodes=["x", "y"])
    for db in (empty, lonely):
        compiled = compiled_for(db, "a*")
        evaluator = ParallelEvaluator(db, num_shards=4)
        assert evaluator.evaluate_all_sorted(
            compiled
        ) == engine_mod.evaluate_all_sorted(db, compiled)
    # a* accepts epsilon: every known node pairs with itself.
    assert ParallelEvaluator(lonely, num_shards=3).evaluate_all(
        compiled_for(lonely, "a*")
    ) == frozenset({("x", "x"), ("y", "y")})


def test_epsilon_accepting_query_across_shard_counts():
    db = make_graph("grid", seed=2, edges=24)
    compiled = compiled_for(db, "r*.d*")
    expected = engine_mod.evaluate_all_sorted(db, compiled)
    for num_shards in SHARD_COUNTS:
        evaluator = ParallelEvaluator(db, num_shards=num_shards)
        assert evaluator.evaluate_all_sorted(compiled) == expected


def test_formula_queries_share_the_compiled_payload():
    """Theory resolution happens at compile time; sharding sees labels only."""
    db = make_graph("scale_free", seed=4, edges=60)
    theory = Theory(domain={"a", "b", "c"}, predicates={"P": {"a", "b"}})
    expr = concat(sym(Pred("P")), star(sym(TOP)))
    compiled = engine_mod.compile_automaton(
        RPQ(expr).eps_free_nfa(), theory, db.domain()
    )
    expected = engine_mod.evaluate_all_sorted(db, compiled)
    assert frozenset(expected) == naive_evaluate(db, RPQ(expr), theory)
    for num_shards in (2, 7):
        evaluator = ParallelEvaluator(db, num_shards=num_shards)
        assert evaluator.evaluate_all_sorted(compiled) == expected


def test_unknown_nodes_raise_keyerror_like_the_engine():
    db = make_graph("chain", seed=0, edges=5)
    compiled = compiled_for(db, "a")
    evaluator = ParallelEvaluator(db, num_shards=2)
    with pytest.raises(KeyError):
        evaluator.evaluate_single_source(compiled, "ghost")
    with pytest.raises(KeyError):
        evaluator.evaluate_pair(compiled, "n0", "ghost")
