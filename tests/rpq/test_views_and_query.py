"""View sets, materialization, the view graph, and RPQ grounding."""

import pytest

from repro.regex.ast import concat, sym
from repro.rpq import (
    RPQ,
    Const,
    GraphDB,
    Pred,
    RPQViews,
    Theory,
    view_graph,
)


@pytest.fixture
def theory():
    return Theory(
        domain={"a", "b", "c"},
        predicates={"P": {"a", "b"}},
    )


class TestRPQ:
    def test_from_string(self):
        rpq = RPQ("a.b*", name="test")
        assert rpq.name == "test"
        assert rpq.nfa().accepts(("a", "b"))

    def test_from_regex_with_formulas(self):
        rpq = RPQ(sym(Pred("P")))
        assert rpq.formulas() == frozenset({Pred("P")})

    def test_from_rpq_copies(self):
        inner = RPQ("a", name="inner")
        outer = RPQ(inner)
        assert outer.name == "inner"

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            RPQ(42)  # type: ignore[arg-type]

    def test_as_formula_query(self, theory):
        lifted = RPQ("a.b").as_formula_query()
        assert lifted.formulas() == frozenset({Const("a"), Const("b")})
        grounded = lifted.grounded(theory)
        assert grounded.accepts(("a", "b"))
        assert not grounded.accepts(("b", "a"))

    def test_grounded_expands_formulas(self, theory):
        rpq = RPQ(sym(Pred("P")))
        grounded = rpq.grounded(theory)
        assert grounded.accepts(("a",))
        assert grounded.accepts(("b",))
        assert not grounded.accepts(("c",))

    def test_grounded_restrict_to(self, theory):
        rpq = RPQ(sym(Pred("P")))
        grounded = rpq.grounded(theory, restrict_to={"a", "c"})
        assert grounded.accepts(("a",))
        assert not grounded.accepts(("b",))

    def test_grounded_rejects_unknown_constant(self, theory):
        with pytest.raises(ValueError):
            RPQ("zz").grounded(theory)

    def test_grounded_mixed_symbols(self, theory):
        rpq = RPQ(concat(sym("c"), sym(Pred("P"))))
        grounded = rpq.grounded(theory)
        assert grounded.accepts(("c", "a"))
        assert not grounded.accepts(("a", "c"))


class TestRPQViews:
    def test_symbols_ordered(self):
        views = RPQViews({"q1": "a", "q2": "b"})
        assert views.symbols == ("q1", "q2")
        assert "q1" in views
        assert len(views) == 2

    def test_from_list(self):
        views = RPQViews.from_list(["a", "b.c"])
        assert views.symbols == ("q1", "q2")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RPQViews({})

    def test_extended_rejects_duplicates(self):
        views = RPQViews({"q1": "a"})
        with pytest.raises(ValueError):
            views.extended({"q1": "b"})

    def test_formulas_aggregated(self):
        views = RPQViews({"q1": RPQ(sym(Pred("P"))), "q2": "a"})
        assert views.formulas() == frozenset({Pred("P")})

    def test_materialize(self, theory):
        db = GraphDB([("x", "a", "y"), ("y", "c", "z")])
        views = RPQViews({"qP": RPQ(sym(Pred("P"))), "qc": "c"})
        extensions = views.materialize(db, theory)
        assert extensions["qP"] == frozenset({("x", "y")})
        assert extensions["qc"] == frozenset({("y", "z")})


class TestViewGraph:
    def test_edges_from_extensions(self):
        graph = view_graph({"q1": [("x", "y"), ("y", "z")], "q2": [("x", "z")]})
        assert graph.successors("x", "q1") == frozenset({"y"})
        assert graph.successors("x", "q2") == frozenset({"z"})
        assert graph.num_edges == 3

    def test_empty_extensions(self):
        graph = view_graph({"q1": []})
        assert graph.num_edges == 0
