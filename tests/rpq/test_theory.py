"""Theories and the formula language (Section 4.1)."""

import pytest

from repro.rpq.formulas import TOP, And, Const, Not, Or, Pred
from repro.rpq.theory import Theory


@pytest.fixture
def theory():
    return Theory(
        domain={"rome", "jerusalem", "paris", "pizzeria"},
        predicates={
            "City": {"rome", "jerusalem", "paris"},
            "Holy": {"jerusalem", "rome"},
            "Restaurant": {"pizzeria"},
        },
    )


class TestTheory:
    def test_domain_required(self):
        with pytest.raises(ValueError):
            Theory(domain=set())

    def test_extension_must_be_in_domain(self):
        with pytest.raises(ValueError):
            Theory(domain={"a"}, predicates={"P": {"b"}})

    def test_predicate_holds(self, theory):
        assert theory.predicate_holds("City", "rome")
        assert not theory.predicate_holds("City", "pizzeria")

    def test_unknown_predicate(self, theory):
        with pytest.raises(KeyError):
            theory.predicate_holds("Nope", "rome")

    def test_entails_requires_domain_constant(self, theory):
        with pytest.raises(ValueError):
            theory.entails(Pred("City"), "atlantis")

    def test_trivial_theory(self):
        theory = Theory.trivial({"a", "b"})
        assert theory.entails(Const("a"), "a")
        assert not theory.entails(Const("a"), "b")


class TestFormulas:
    def test_const(self, theory):
        assert theory.entails(Const("rome"), "rome")
        assert not theory.entails(Const("rome"), "paris")

    def test_pred(self, theory):
        assert theory.entails(Pred("Holy"), "jerusalem")
        assert not theory.entails(Pred("Holy"), "paris")

    def test_top(self, theory):
        for constant in theory.domain:
            assert theory.entails(TOP, constant)

    def test_boolean_connectives(self, theory):
        city_not_holy = And((Pred("City"), Not(Pred("Holy"))))
        assert theory.entails(city_not_holy, "paris")
        assert not theory.entails(city_not_holy, "rome")
        either = Or((Pred("Restaurant"), Pred("Holy")))
        assert theory.entails(either, "pizzeria")
        assert theory.entails(either, "rome")
        assert not theory.entails(either, "paris")

    def test_operator_sugar(self, theory):
        assert theory.entails(Pred("City") & Pred("Holy"), "rome")
        assert theory.entails(Pred("City") | Pred("Restaurant"), "pizzeria")
        assert theory.entails(~Pred("City"), "pizzeria")

    def test_formulas_are_hashable(self):
        assert hash(Pred("City")) == hash(Pred("City"))
        assert Pred("City") == Pred("City")
        assert len({Const("a"), Const("a"), Const("b")}) == 2

    def test_str_rendering(self, theory):
        assert str(Pred("City")) == "City"
        assert str(Const("rome")) == "=rome"
        assert str(~Pred("City")) == "!City"
        assert str(TOP) == "_"


class TestSatisfyingAndMatching:
    def test_satisfying(self, theory):
        assert theory.satisfying(Pred("Holy")) == frozenset({"rome", "jerusalem"})
        assert theory.satisfying(TOP) == theory.domain

    def test_matches_definition_41(self, theory):
        formulas = [Pred("City"), Pred("Restaurant")]
        assert theory.matches(formulas, ["rome", "pizzeria"])
        assert not theory.matches(formulas, ["pizzeria", "rome"])
        assert not theory.matches(formulas, ["rome"])  # length mismatch

    def test_partition_by_signature(self, theory):
        classes = theory.partition([Pred("City"), Pred("Holy")])
        as_sets = {frozenset(block) for block in classes}
        assert frozenset({"rome", "jerusalem"}) in as_sets
        assert frozenset({"paris"}) in as_sets
        assert frozenset({"pizzeria"}) in as_sets

    def test_representatives_are_consistent(self, theory):
        mapping = theory.representatives([Pred("City")])
        assert set(mapping) == theory.domain
        # All cities map to the same representative.
        assert mapping["rome"] == mapping["paris"]
        assert mapping["rome"] != mapping["pizzeria"]
