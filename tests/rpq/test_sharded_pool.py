"""Partition invariants, the worker-pool path, and crash recovery.

The differential harness (``test_sharded_differential``) pins answer
equality; this file pins the machinery around it: that
:class:`ShardedGraphDB` is a true partition of the input graph, that the
process-pool path is exercised end to end, and that a worker dying
mid-sweep surfaces one clean :class:`ShardedEvaluationError` — promptly,
with the pool torn down — rather than a hang or a half answer.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpq import (
    RPQ,
    ParallelEvaluator,
    ShardedEvaluationError,
    ShardedGraphDB,
    make_graph,
    make_queries,
)
from repro.rpq import engine as engine_mod


def compiled_for(db, query):
    return engine_mod.compile_automaton(
        RPQ(query).eps_free_nfa(), None, db.domain()
    )


# ----------------------------------------------------------------------
# ShardedGraphDB is a partition
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=9999),
    edges=st.integers(min_value=4, max_value=60),
    num_shards=st.integers(min_value=1, max_value=12),
    family=st.sampled_from(("chain", "grid", "scale_free", "layered_dag")),
)
def test_partition_conserves_nodes_and_edges(seed, edges, num_shards, family):
    db = make_graph(family, seed, edges=edges)
    sharded = ShardedGraphDB(db, num_shards)
    assert sum(sharded.shard_sizes()) == db.num_nodes
    assert sharded.num_edges == db.num_edges
    assert sharded.num_internal_edges + sharded.num_cut_edges == db.num_edges
    # Every node is owned by the shard whose range contains it, and every
    # edge is stored by its source's owner with the right cut/internal split.
    for node_id in range(db.num_nodes):
        owner = sharded.owner(node_id)
        shard = sharded.shards[owner]
        assert shard.lo <= node_id < shard.hi
    for source, label, target in db.edges():
        source_id, target_id = db.node_id(source), db.node_id(target)
        shard = sharded.shards[sharded.owner(source_id)]
        if sharded.owner(target_id) == shard.index:
            assert target_id in shard.internal[label][source_id]
        else:
            groups = dict(shard.cut[label][source_id])
            assert target_id in groups[sharded.owner(target_id)]


def test_single_shard_has_no_cut_edges():
    db = make_graph("scale_free", seed=3, edges=80)
    sharded = ShardedGraphDB(db, 1)
    assert sharded.num_cut_edges == 0
    assert sharded.num_internal_edges == db.num_edges


def test_invalid_shard_and_worker_counts_rejected():
    db = make_graph("chain", seed=0, edges=4)
    with pytest.raises(ValueError):
        ShardedGraphDB(db, 0)
    with pytest.raises(ValueError):
        ParallelEvaluator(db, num_shards=2, workers=0)
    with pytest.raises(IndexError):
        ShardedGraphDB(db, 2).owner(db.num_nodes)


# ----------------------------------------------------------------------
# The worker-pool path
# ----------------------------------------------------------------------


def test_pool_matches_sequential_on_every_family():
    for family in ("chain", "grid", "scale_free", "layered_dag"):
        db = make_graph(family, seed=6, edges=120)
        query = make_queries(family, seed=6, count=1)[0]
        compiled = compiled_for(db, query)
        sequential = ParallelEvaluator(db, num_shards=4, workers=1)
        pooled = ParallelEvaluator(db, num_shards=4, workers=3)
        assert pooled.evaluate_all_sorted(
            compiled
        ) == sequential.evaluate_all_sorted(compiled)


def test_workers_capped_by_shard_count_single_shard_stays_sequential():
    """workers > shards never spawns more processes than shards; one
    shard runs inline (the pool would be pure overhead)."""
    db = make_graph("grid", seed=2, edges=40)
    compiled = compiled_for(db, "r.d")
    evaluator = ParallelEvaluator(db, num_shards=1, workers=8)
    assert evaluator.evaluate_all_sorted(
        compiled
    ) == engine_mod.evaluate_all_sorted(db, compiled)


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2], ids=["sequential", "pool"])
def test_worker_fault_surfaces_clean_typed_error(workers):
    """A worker raising mid-sweep becomes ShardedEvaluationError on both
    execution paths — no hang, no partial answer, pool torn down."""
    db = make_graph("layered_dag", seed=8, edges=60)
    compiled = compiled_for(db, "a.b")
    evaluator = ParallelEvaluator(
        db, num_shards=4, workers=workers, _fail_shards=[2]
    )
    with pytest.raises(ShardedEvaluationError) as excinfo:
        evaluator.evaluate_all(compiled)
    assert "fault" in str(excinfo.value)


def test_pool_is_reused_across_calls_and_released_by_close():
    """One evaluator = one pool: repeated queries must not re-spawn
    workers, and close() must release them (sequential still works)."""
    db = make_graph("grid", seed=4, edges=80)
    first = compiled_for(db, "r.d")
    second = compiled_for(db, "d.d")
    with ParallelEvaluator(db, num_shards=4, workers=2) as evaluator:
        evaluator.evaluate_all(first)
        pool = evaluator._pool
        assert pool is not None
        evaluator.evaluate_all(second)
        assert evaluator._pool is pool  # same pool, no re-spawn
    assert evaluator._pool is None  # context exit closed it
    # Still answers correctly after close (sequential, then re-spawned).
    assert evaluator.evaluate_all_sorted(
        first
    ) == engine_mod.evaluate_all_sorted(db, first)


def test_single_source_and_pair_faults_use_the_same_contract():
    """Kernel failures on the single-source/single-pair entry points
    surface as ShardedEvaluationError too (QuerySession's fallback
    depends on it) — while unknown-node KeyErrors stay KeyErrors."""
    db = make_graph("chain", seed=2, edges=10)
    compiled = compiled_for(db, "a.b")
    all_shards = range(4)
    evaluator = ParallelEvaluator(
        db, num_shards=4, workers=1, _fail_shards=all_shards
    )
    with pytest.raises(ShardedEvaluationError):
        evaluator.evaluate_single_source(compiled, "n0")
    with pytest.raises(ShardedEvaluationError):
        evaluator.evaluate_pair(compiled, "n0", "n2")
    with pytest.raises(KeyError):
        evaluator.evaluate_single_source(compiled, "ghost")


def test_fresh_evaluator_recovers_after_a_fault():
    db = make_graph("grid", seed=5, edges=60)
    compiled = compiled_for(db, "r.r.d")
    faulty = ParallelEvaluator(db, num_shards=3, workers=2, _fail_shards=[0])
    with pytest.raises(ShardedEvaluationError):
        faulty.evaluate_all(compiled)
    healthy = ParallelEvaluator(db, num_shards=3, workers=2)
    assert healthy.evaluate_all_sorted(
        compiled
    ) == engine_mod.evaluate_all_sorted(db, compiled)
