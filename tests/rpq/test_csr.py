"""CSR snapshots: construction, mmap round-trip, caching, drained stores.

The snapshot is the numpy backend's entire view of the graph, so these
tests pin its contract directly against the live ``GraphDB`` indexes:
every adjacency list survives the freeze, the on-disk format round-trips
byte-for-byte (mmap and in-memory alike), ``mutation_count`` caching
never serves a stale snapshot, and stores whose interned node count
exceeds their live label domain (drained stores) keep full-width
snapshots with empty rows rather than shifted ids.
"""

import random

import numpy as np
import pytest

from repro.regex import parse
from repro.automata import to_nfa
from repro.rpq import engine as engine_mod
from repro.rpq.csr import CSRSnapshot, blocks_for
from repro.rpq.graphdb import GraphDB, random_graph
from repro.rpq import kernel as kernel_mod


def compiled_for(db, expr, labels=("a", "b", "c")):
    nfa = to_nfa(parse(expr))
    return engine_mod.compile_automaton(
        nfa, None, frozenset(labels), plain_symbols=True
    )


class TestBlocksFor:
    @pytest.mark.parametrize(
        "width,expected",
        [(0, 1), (1, 1), (63, 1), (64, 1), (65, 2), (128, 2), (129, 3)],
    )
    def test_boundaries(self, width, expected):
        assert blocks_for(width) == expected


class TestFromGraph:
    def test_adjacency_matches_live_indexes(self):
        db = random_graph(random.Random(5), 40, ["a", "b", "c"], 160)
        snapshot = CSRSnapshot.from_graph(db)
        assert snapshot.num_nodes == db.num_nodes
        assert snapshot.num_edges == db.num_edges
        for label in db.domain():
            out = db.label_out_index(label)
            for v in range(db.num_nodes):
                expected = sorted(out.get(v, ()))
                got = snapshot.out_neighbors(label, v)
                assert list(got) == expected

    def test_empty_graph(self):
        snapshot = CSRSnapshot.from_graph(GraphDB())
        assert snapshot.num_nodes == 0
        assert snapshot.num_edges == 0
        assert snapshot.labels == ()

    def test_adjacency_bitmap_brute_force(self):
        db = random_graph(random.Random(9), 70, ["a", "b"], 220)
        snapshot = CSRSnapshot.from_graph(db)
        for label in db.domain():
            for lo, hi in [(0, 70), (0, 31), (13, 66), (64, 70)]:
                bitmap = snapshot.adjacency_bitmap(label, lo, hi)
                out = db.label_out_index(label)
                expected = np.zeros(
                    (70, blocks_for(hi - lo)), dtype=np.uint64
                )
                for u, targets in out.items():
                    if not lo <= u < hi:
                        continue
                    col = u - lo
                    for w in targets:
                        expected[w, col >> 6] |= np.uint64(1) << np.uint64(
                            col & 63
                        )
                assert np.array_equal(bitmap, expected)


class TestSaveLoad:
    def _graph(self):
        return random_graph(random.Random(2), 90, ["a", "b", "c"], 400)

    @pytest.mark.parametrize("mmap", [False, True])
    def test_round_trip(self, tmp_path, mmap):
        db = self._graph()
        snapshot = CSRSnapshot.from_graph(db)
        path = tmp_path / "graph.csr"
        snapshot.save(path)
        loaded = CSRSnapshot.load(path, mmap=mmap)
        assert loaded.num_nodes == snapshot.num_nodes
        assert loaded.num_edges == snapshot.num_edges
        assert loaded.labels == snapshot.labels
        for label in snapshot.labels:
            ours, theirs = snapshot.label_csr(label), loaded.label_csr(label)
            assert np.array_equal(ours.out_indptr, theirs.out_indptr)
            assert np.array_equal(ours.out_indices, theirs.out_indices)
            assert np.array_equal(ours.in_indptr, theirs.in_indptr)
            assert np.array_equal(ours.in_indices, theirs.in_indices)

    def test_loaded_snapshot_evaluates_identically(self, tmp_path):
        db = self._graph()
        snapshot = CSRSnapshot.from_graph(db)
        path = tmp_path / "graph.csr"
        snapshot.save(path)
        loaded = CSRSnapshot.load(path, mmap=True)
        for expr in ["a", "a.b", "(a+b)*", "a.(b+c)*.a"]:
            compiled = compiled_for(db, expr)
            assert kernel_mod.all_pairs_ids(
                loaded, compiled
            ) == kernel_mod.all_pairs_ids(snapshot, compiled)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.csr"
        path.write_bytes(b"not a snapshot at all")
        with pytest.raises(ValueError):
            CSRSnapshot.load(path)

    def test_empty_graph_round_trip(self, tmp_path):
        snapshot = CSRSnapshot.from_graph(GraphDB())
        path = tmp_path / "empty.csr"
        snapshot.save(path)
        loaded = CSRSnapshot.load(path, mmap=True)
        assert loaded.num_nodes == 0
        assert loaded.labels == ()


class TestDurability:
    """Regressions for the crash-mid-write / truncated-file defects.

    The defects: ``save`` wrote directly to the destination path, so a
    crash mid-write left a truncated file at the *published* name; and
    ``load`` trusted the manifest without checking the file actually
    holds the bytes it promises, so a lazily-mapping pool worker got
    short read-only views and crashed deep inside the kernel.  Now
    ``save`` stages through a unique scratch file and publishes with one
    ``os.replace``, and ``load`` rejects bad magic / short headers /
    missing array bytes with a clear ``ValueError`` up front.
    """

    def _snapshot(self):
        db = random_graph(random.Random(11), 60, ["a", "b"], 250)
        return CSRSnapshot.from_graph(db)

    @pytest.mark.parametrize("mmap", [False, True])
    def test_truncated_array_data_rejected(self, tmp_path, mmap):
        snapshot = self._snapshot()
        path = tmp_path / "graph.csr"
        snapshot.save(path)
        full = path.read_bytes()
        # Cut inside the raw array region: the header parses, the
        # manifest promises more bytes than the file holds.
        path.write_bytes(full[: len(full) - 128])
        with pytest.raises(ValueError, match="truncated"):
            CSRSnapshot.load(path, mmap=mmap)

    def test_truncated_header_rejected(self, tmp_path):
        snapshot = self._snapshot()
        path = tmp_path / "graph.csr"
        snapshot.save(path)
        full = path.read_bytes()
        # Cut inside the pickled header (magic is 8 bytes, length 8 more).
        path.write_bytes(full[:40])
        with pytest.raises(ValueError, match="truncated"):
            CSRSnapshot.load(path)

    def test_truncated_length_field_rejected(self, tmp_path):
        path = tmp_path / "graph.csr"
        from repro.rpq import csr as csr_mod

        path.write_bytes(csr_mod._MAGIC + b"\x03")  # magic, then 1 of 8 bytes
        with pytest.raises(ValueError, match="truncated"):
            CSRSnapshot.load(path)

    def test_garbage_header_rejected(self, tmp_path):
        from repro.rpq import csr as csr_mod

        path = tmp_path / "graph.csr"
        garbage = b"\xde\xad\xbe\xef" * 8
        path.write_bytes(
            csr_mod._MAGIC + len(garbage).to_bytes(8, "little") + garbage
        )
        with pytest.raises(ValueError, match="corrupt"):
            CSRSnapshot.load(path)

    def test_crash_mid_write_leaves_destination_untouched(
        self, tmp_path, monkeypatch
    ):
        """The failing-before scenario: a writer dying mid-save used to
        leave a truncated file at the published path."""
        snapshot = self._snapshot()
        path = tmp_path / "graph.csr"
        snapshot.save(path)
        good_bytes = path.read_bytes()

        def die_mid_write(self, handle):
            handle.write(good_bytes[: len(good_bytes) // 2])
            raise OSError("injected: writer crashed mid-save")

        monkeypatch.setattr(CSRSnapshot, "_write_payload", die_mid_write)
        with pytest.raises(OSError, match="injected"):
            self._snapshot().save(path)
        assert path.read_bytes() == good_bytes, (
            "a crashed save corrupted the published snapshot"
        )
        leftovers = [p for p in tmp_path.iterdir() if p.name != "graph.csr"]
        assert leftovers == [], f"crashed save left scratch files: {leftovers}"
        # The survivor still loads and evaluates.
        CSRSnapshot.load(path, mmap=True)

    def test_save_publishes_through_unique_scratch_names(
        self, tmp_path, monkeypatch
    ):
        from repro.rpq import csr as csr_mod

        real_replace = csr_mod.os.replace
        staged = []

        def record(src, dst):
            staged.append(str(src))
            return real_replace(src, dst)

        monkeypatch.setattr(csr_mod.os, "replace", record)
        snapshot = self._snapshot()
        path = tmp_path / "graph.csr"
        snapshot.save(path)
        snapshot.save(path)
        assert len(staged) == 2 and staged[0] != staged[1]
        for tmp in staged:
            assert tmp.endswith(".tmp")


class TestMutationCountCaching:
    def test_counter_moves_only_on_effective_mutations(self):
        db = GraphDB()
        base = db.mutation_count
        db.add_edge("x", "a", "y")  # two interns + one edge
        assert db.mutation_count == base + 3
        db.add_edge("x", "a", "y")  # duplicate: no-op
        assert db.mutation_count == base + 3
        db.add_node("x")  # already interned: no-op
        assert db.mutation_count == base + 3
        assert db.remove_edge("x", "a", "y")
        assert db.mutation_count == base + 4
        assert not db.remove_edge("x", "a", "y")  # already gone: no-op
        assert db.mutation_count == base + 4

    def test_to_csr_cached_until_mutation(self):
        db = GraphDB([("x", "a", "y")])
        first = db.to_csr()
        assert db.to_csr() is first
        db.add_edge("y", "a", "x")
        second = db.to_csr()
        assert second is not first
        assert second.num_edges == 2

    def test_no_op_mutation_keeps_cache(self):
        db = GraphDB([("x", "a", "y")])
        first = db.to_csr()
        db.add_edge("x", "a", "y")  # duplicate
        assert db.to_csr() is first


class TestDrainedStores:
    """num_nodes > len(domain()): ids outlive their last incident edge."""

    def _drained(self):
        db = GraphDB()
        for i in range(10):
            db.add_edge(f"n{i}", "a", f"n{(i + 1) % 10}")
        for edge in list(db.to_triples()):
            assert db.remove_edge(*edge)
        assert db.num_nodes == 10
        assert db.num_edges == 0
        assert len(db.domain()) == 0
        return db

    def test_snapshot_keeps_all_interned_nodes(self):
        db = self._drained()
        snapshot = db.to_csr()
        assert snapshot.num_nodes == 10
        assert snapshot.num_edges == 0

    @pytest.mark.parametrize("backend", ["bigint", "numpy"])
    def test_no_ghost_nodes_after_drain(self, backend):
        """Decoded answers mention only interned nodes, and the
        epsilon diagonal survives the drain on both backends."""
        db = self._drained()
        compiled = compiled_for(db, "a*", labels=("a",))
        answers = engine_mod.evaluate_all_sorted(db, compiled, backend=backend)
        expected = [(f"n{i}", f"n{i}") for i in range(10)]
        assert sorted(answers) == sorted(expected)
        nodes = db.nodes
        for x, y in answers:
            assert x in nodes and y in nodes

    def test_sharded_partitioning_tolerates_drained_store(self):
        from repro.rpq.sharded import ParallelEvaluator

        db = self._drained()
        compiled = compiled_for(db, "a*", labels=("a",))
        expected = engine_mod.evaluate_all_sorted(db, compiled)
        for backend in ("bigint", "numpy"):
            for shards in (1, 3, 7, 16):
                with ParallelEvaluator(db, shards, backend=backend) as ev:
                    assert ev.evaluate_all_sorted(compiled) == expected

    def test_partially_drained_store_keeps_live_edges(self):
        db = GraphDB()
        for i in range(8):
            db.add_edge(f"n{i}", "a", f"n{i + 1}")
        # Drain the odd edges only: interned nodes exceed live degree.
        db.remove_edge("n1", "a", "n2")
        db.remove_edge("n5", "a", "n6")
        compiled = compiled_for(db, "a.a", labels=("a",))
        big = engine_mod.evaluate_all_sorted(db, compiled, backend="bigint")
        vec = engine_mod.evaluate_all_sorted(db, compiled, backend="numpy")
        assert big == vec
