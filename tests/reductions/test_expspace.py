"""Theorem 3.3: the reduction agrees with brute-force tiling (THM33).

The session-cached instances pit the construction against the ground-truth
solver: the maximal rewriting is non-empty iff a tiling exists, and the
rewriting language consists exactly of the words describing valid tilings.
"""

from itertools import product

import pytest

from repro.reductions.expspace import expspace_reduction, tiling_word
from repro.reductions.tiling import TilingSystem, solve_corridor_tiling


@pytest.mark.slow
class TestReductionSolvable:
    def test_nonempty_iff_tiling_exists(self, expspace_instances):
        reduction, rewriting = expspace_instances["solvable"]
        assert solve_corridor_tiling(reduction.system, reduction.width, 4)
        assert not rewriting.is_empty()

    def test_shortest_word_is_a_tiling(self, expspace_instances):
        reduction, rewriting = expspace_instances["solvable"]
        witness = rewriting.shortest_word()
        assert witness is not None
        assert reduction.word_describes_tiling(witness)

    def test_language_equals_tilings_up_to_length4(self, expspace_instances):
        reduction, rewriting = expspace_instances["solvable"]
        for length in range(5):
            for word in product(reduction.system.tiles, repeat=length):
                assert rewriting.accepts(word) == reduction.word_describes_tiling(
                    word
                ), word

    def test_known_tiling_accepted(self, expspace_instances):
        reduction, rewriting = expspace_instances["solvable"]
        rows = solve_corridor_tiling(reduction.system, reduction.width, 3)
        assert rewriting.accepts(tiling_word(rows))

    def test_stacked_tiling_accepted(self, expspace_instances):
        reduction, rewriting = expspace_instances["solvable"]
        rows = [["a", "b"], ["a", "b"], ["a", "b"]]
        assert rewriting.accepts(tiling_word(rows))


@pytest.mark.slow
class TestReductionUnsolvable:
    def test_empty_iff_no_tiling(self, expspace_instances):
        reduction, rewriting = expspace_instances["unsolvable"]
        assert solve_corridor_tiling(reduction.system, reduction.width, 4) is None
        assert rewriting.is_empty()

    def test_degenerate_words_rejected(self, expspace_instances):
        _reduction, rewriting = expspace_instances["unsolvable"]
        assert not rewriting.accepts(())
        assert not rewriting.accepts(("a",))
        assert not rewriting.accepts(("a", "b", "a"))


@pytest.mark.slow
class TestLazyNonemptinessAgrees:
    """The Theorem 3.3 *upper bound* algorithm on the hardness instances."""

    def test_lazy_check_on_both_instances(self, expspace_instances):
        from repro.core import has_nonempty_rewriting

        for name, expected in (("solvable", True), ("unsolvable", False)):
            reduction, _rewriting = expspace_instances[name]
            assert has_nonempty_rewriting(reduction.e0, reduction.views) == expected


class TestConstructionShape:
    @pytest.mark.slow
    def test_views_are_block_languages(self, expspace_instances):
        reduction, _ = expspace_instances["solvable"]
        for tile in reduction.system.tiles:
            nfa = reduction.views.nfa(tile)
            assert nfa.accepts(("$", "0", "1", "1", "0", tile))
            assert not nfa.accepts(("$", "0", "1", "1", "0", "wrong"))

    def test_sizes_polynomial_in_n(self):
        system = TilingSystem(
            tiles=("a", "b"),
            horizontal=frozenset({("a", "b")}),
            vertical=frozenset({("a", "a"), ("b", "b")}),
            t_start="a",
            t_final="b",
        )
        sizes = [expspace_reduction(system, n).e0.size() for n in (1, 2, 3)]
        for prev, nxt in zip(sizes, sizes[1:]):
            assert nxt < prev * 6  # polynomial growth

    def test_requires_corners_and_positive_n(self):
        incomplete = TilingSystem(
            tiles=("a",), horizontal=frozenset(), vertical=frozenset()
        )
        with pytest.raises(ValueError):
            expspace_reduction(incomplete, 1)
        complete = TilingSystem(
            tiles=("a",),
            horizontal=frozenset(),
            vertical=frozenset(),
            t_start="a",
            t_final="a",
        )
        with pytest.raises(ValueError):
            expspace_reduction(complete, 0)
        with pytest.raises(ValueError):
            expspace_reduction(complete, 1, variant="unknown")


@pytest.mark.slow
class TestPaperVariantDegeneracy:
    """The construction exactly as printed vacuously accepts words whose
    length is not a multiple of 2^n — the degeneracy our 'strict' variant
    repairs (documented in DESIGN.md)."""

    @pytest.fixture(scope="class")
    def paper_rewriting(self):
        from repro.core import maximal_rewriting

        system = TilingSystem(
            tiles=("a", "b"),
            horizontal=frozenset({("a", "b")}),
            vertical=frozenset({("a", "a"), ("b", "b")}),
            t_start="a",
            t_final="a",  # unsolvable
        )
        reduction = expspace_reduction(system, 1, variant="paper")
        return reduction, maximal_rewriting(reduction.e0, reduction.views)

    def test_paper_variant_accepts_degenerate_words(self, paper_rewriting):
        _reduction, rewriting = paper_rewriting
        # No tiling exists, yet odd-length words are vacuously accepted:
        # every expansion violates counter conditions (1) or (2).
        assert rewriting.accepts(("a",))
        assert rewriting.accepts(())

    def test_paper_variant_still_rejects_wrong_tilings(self, paper_rewriting):
        _reduction, rewriting = paper_rewriting
        # Words of the right length with wrong tiles are properly rejected.
        assert not rewriting.accepts(("b", "a"))
        assert not rewriting.accepts(("a", "a"))
