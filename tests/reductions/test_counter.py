"""Theorem 3.4: the doubly-exponential counter family (THM34)."""

import pytest

from repro.automata import are_equivalent, to_nfa, word_nfa
from repro.reductions.counter import (
    COUNTER_SYMBOLS,
    counter_reduction,
    counter_word,
    symbol_bits,
)
from repro.regex.ast import plus, word


class TestCounterWord:
    def test_length_formula(self):
        for n in (1, 2):
            assert len(counter_word(n)) == 2 ** n * 2 ** (2 ** n)

    def test_anchors(self):
        for n in (1, 2):
            w = counter_word(n)
            assert w[0] == "b011"
            assert w[-1] == "b110"

    def test_position_components_enumerate_counter(self):
        for n in (1, 2):
            width = 2 ** n
            w = counter_word(n)
            for value in range(2 ** width):
                config = w[value * width : (value + 1) * width]
                decoded = sum(
                    symbol_bits(s)[0] << i for i, s in enumerate(config)
                )
                assert decoded == value

    def test_next_components_predict_successor(self):
        n = 2
        width = 2 ** n
        w = counter_word(n)
        for value in range(2 ** width - 1):
            config = w[value * width : (value + 1) * width]
            predicted = sum(symbol_bits(s)[2] << i for i, s in enumerate(config))
            assert predicted == (value + 1) % 2 ** width

    def test_symbols_are_legal(self):
        for s in counter_word(2):
            p, c, x = symbol_bits(s)
            assert x == (p ^ c)


class TestReductionInstance:
    def test_eight_view_symbols(self):
        reduction = counter_reduction(1)
        assert set(reduction.views.symbols) == set(COUNTER_SYMBOLS)
        assert len(COUNTER_SYMBOLS) == 8

    def test_size_polynomial_in_n(self):
        sizes = [counter_reduction(n).e0.size() for n in (1, 2, 3)]
        for prev, nxt in zip(sizes, sizes[1:]):
            assert nxt < prev * 6

    def test_word_length_property(self):
        reduction = counter_reduction(2)
        assert reduction.word_length == 4 * 2 ** 4
        assert reduction.configuration_length == 4

    def test_rejects_n0(self):
        with pytest.raises(ValueError):
            counter_reduction(0)


@pytest.mark.slow
class TestTheorem34:
    """The heavy checks run against the session-cached n=1 rewriting."""

    def test_accepts_counter_word(self, counter_instance):
        reduction, rewriting = counter_instance
        assert rewriting.accepts(counter_word(reduction.n))

    def test_shortest_word_is_counter_word(self, counter_instance):
        reduction, rewriting = counter_instance
        assert rewriting.shortest_word() == counter_word(reduction.n)

    def test_shortest_word_is_doubly_exponential(self, counter_instance):
        reduction, rewriting = counter_instance
        shortest = rewriting.shortest_word()
        assert len(shortest) >= 2 ** (2 ** reduction.n)

    def test_language_is_counter_word_plus(self, counter_instance):
        # The rewriting is exactly (w_C)^+: the counter may wrap and rerun
        # (see the module docstring), so the shortest word is unique.
        reduction, rewriting = counter_instance
        wc = counter_word(reduction.n)
        expected = to_nfa(plus(word(wc)), alphabet=reduction.views.symbols)
        assert are_equivalent(rewriting.automaton, expected)

    def test_perturbed_words_rejected(self, counter_instance):
        reduction, rewriting = counter_instance
        wc = list(counter_word(reduction.n))
        for index in range(len(wc)):
            for other in COUNTER_SYMBOLS:
                if other == wc[index]:
                    continue
                perturbed = tuple(wc[:index] + [other] + wc[index + 1 :])
                assert not rewriting.accepts(perturbed), (index, other)

    def test_truncations_rejected(self, counter_instance):
        reduction, rewriting = counter_instance
        wc = counter_word(reduction.n)
        for cut in range(1, len(wc)):
            assert not rewriting.accepts(wc[:cut])
