"""Theorem 3.5 building blocks (THM35).

The full decision procedure is doubly exponential even at n=1, so the
tests validate the construction's components: polynomial sizes, the view
shapes, and the expansion-form claims for the tractable error detectors
(``E0^H``, ``E0^S``).
"""

import pytest

from repro.automata.containment import is_contained
from repro.automata.thompson import to_nfa
from repro.core.expansion import word_expansion_nfa
from repro.reductions.tiling import TilingSystem
from repro.reductions.twoexpspace import tilde, twoexpspace_reduction


@pytest.fixture(scope="module")
def reduction():
    system = TilingSystem(
        tiles=("s", "f", "l", "r"),
        horizontal=frozenset({("s", "r"), ("r", "l"), ("l", "r"), ("r", "f")}),
        vertical=frozenset({("s", "l"), ("l", "l"), ("r", "r"), ("r", "f")}),
        t_start="s",
        t_final="f",
        t_left="l",
        t_right="r",
    )
    return twoexpspace_reduction(system, 1)


class TestShape:
    def test_view_alphabet(self, reduction):
        symbols = set(reduction.views.symbols)
        assert {"b000", "b111"} <= symbols  # counter symbols
        assert {tilde(t) for t in reduction.system.tiles} <= symbols

    def test_counter_views_include_tiles(self, reduction):
        nfa = reduction.views.nfa("b000")
        # re(e) = block + Delta: a bare tile is a valid expansion.
        assert nfa.accepts(("s",))
        assert nfa.accepts(("$", "0", "1", "1", "0", "b000"))

    def test_tilde_views(self, reduction):
        nfa = reduction.views.nfa(tilde("s"))
        assert nfa.accepts((tilde("s"),))
        assert nfa.accepts(("s",))
        assert not nfa.accepts(("f",))

    def test_row_length_formula(self, reduction):
        assert reduction.row_length == 1 + 2 * 2 ** 2

    def test_delta_star_included(self, reduction):
        e0 = to_nfa(reduction.e0)
        assert e0.accepts(())
        assert e0.accepts(("s", "f", "l", "r", "s"))

    def test_sizes_polynomial(self):
        system = TilingSystem(
            tiles=("s", "f"),
            horizontal=frozenset({("s", "f")}),
            vertical=frozenset({("s", "s")}),
            t_start="s",
            t_final="f",
        )
        sizes = [twoexpspace_reduction(system, n).e0.size() for n in (1, 2)]
        assert sizes[1] < sizes[0] * 8

    def test_rejects_n0(self, reduction):
        with pytest.raises(ValueError):
            twoexpspace_reduction(reduction.system, 0)


@pytest.mark.slow
class TestExpansionFormClaims:
    """The paper's "exp(w) subseteq L(E0^X) precisely when w is of form ..."
    statements, checked word-by-word for the tractable X."""

    def test_e_h_accepts_bad_horizontal_pairs(self, reduction):
        # w = ~l.~s has (l, s) not in H: every expansion must be in E0^H.
        target = to_nfa(reduction.e_h)
        w = (tilde("l"), tilde("s"))
        assert is_contained(word_expansion_nfa(w, reduction.views), target)

    def test_e_h_rejects_good_horizontal_pairs(self, reduction):
        # (s, r) in H: some expansion escapes E0^H.
        target = to_nfa(reduction.e_h)
        w = (tilde("s"), tilde("r"))
        assert not is_contained(word_expansion_nfa(w, reduction.views), target)

    def test_e_h_with_counter_symbol_padding(self, reduction):
        # Sigma_E^C* prefix/suffix: counter symbols around the bad pair.
        target = to_nfa(reduction.e_h)
        w = ("b000", tilde("l"), tilde("s"), "b111")
        assert is_contained(word_expansion_nfa(w, reduction.views), target)

    def test_e_s_accepts_wrong_start_tile(self, reduction):
        target = to_nfa(reduction.e_s)
        w = (tilde("r"), "b010", "b101")
        assert is_contained(word_expansion_nfa(w, reduction.views), target)

    def test_e_s_rejects_correct_start_tile(self, reduction):
        target = to_nfa(reduction.e_s)
        w = (tilde("s"), "b010")
        assert not is_contained(word_expansion_nfa(w, reduction.views), target)

    def test_error_words_are_rewritings_of_e0(self, reduction):
        # Any Sigma_E word whose expansions all land in E0^1 is in
        # particular a rewriting of E0 = E0^1 + Delta*.
        e0 = to_nfa(reduction.e0)
        w = (tilde("l"), tilde("s"))  # horizontal error word
        assert is_contained(word_expansion_nfa(w, reduction.views), e0)

    def test_correct_tiling_word_is_not_a_rewriting(self, reduction):
        # ~s.~r spells a horizontally valid pair: its pure-tile expansion
        # s.r is in Delta*, but the mixed expansion ~s.~r is in no error
        # language, so the word is not part of any rewriting.
        e0 = to_nfa(reduction.e0)
        w = (tilde("s"), tilde("r"))
        assert not is_contained(word_expansion_nfa(w, reduction.views), e0)
