"""Block-pattern builders: shapes and membership of generated languages."""

import pytest

from repro.automata.thompson import to_nfa
from repro.reductions.blocks import (
    any_block,
    bits,
    block,
    block_view_expr,
    counter_bad_conditions,
    highlight_bad_conditions,
    nonzero_bits,
    ones,
    zeros,
)


def accepts(expr, word):
    return to_nfa(expr).accepts(tuple(word))


class TestBitPatterns:
    def test_bits(self):
        assert accepts(bits(2), "01")
        assert accepts(bits(2), "11")
        assert not accepts(bits(2), "0")
        assert not accepts(bits(2), "012")

    def test_zeros_ones(self):
        assert accepts(zeros(3), "000")
        assert not accepts(zeros(3), "010")
        assert accepts(ones(2), "11")

    def test_nonzero_bits(self):
        assert accepts(nonzero_bits(3), "010")
        assert accepts(nonzero_bits(3), "111")
        assert not accepts(nonzero_bits(3), "000")
        with pytest.raises(ValueError):
            nonzero_bits(0)


class TestBlockPattern:
    """Block layout for n=1: $ p c x h t (6 symbols)."""

    def test_any_block(self):
        expr = any_block(1, ["t1", "t2"])
        assert accepts(expr, ["$", "0", "1", "0", "1", "t1"])
        assert accepts(expr, ["$", "1", "1", "1", "0", "t2"])
        assert not accepts(expr, ["$", "0", "1", "0", "t1"])  # missing bit

    def test_position_classes(self):
        zero = block(1, ["t"], position="zero")
        assert accepts(zero, ["$", "0", "0", "0", "0", "t"])
        assert not accepts(zero, ["$", "1", "0", "0", "0", "t"])
        one = block(1, ["t"], position="ones")
        assert accepts(one, ["$", "1", "0", "0", "0", "t"])
        nonzero = block(1, ["t"], position="nonzero")
        assert accepts(nonzero, ["$", "1", "0", "0", "0", "t"])
        assert not accepts(nonzero, ["$", "0", "0", "0", "0", "t"])
        not_ones = block(1, ["t"], position="not_ones")
        assert accepts(not_ones, ["$", "0", "1", "1", "1", "t"])
        assert not accepts(not_ones, ["$", "1", "1", "1", "1", "t"])

    def test_highlight_constraint(self):
        lit = block(1, ["t"], highlight=1)
        assert accepts(lit, ["$", "0", "0", "0", "1", "t"])
        assert not accepts(lit, ["$", "0", "0", "0", "0", "t"])

    def test_tile_subset(self):
        expr = block(1, ["t1"])
        assert not accepts(expr, ["$", "0", "0", "0", "0", "t2"])

    def test_single_tile_accepts_scalar(self):
        expr = block(1, "t1")
        assert accepts(expr, ["$", "0", "0", "0", "0", "t1"])

    def test_extra_alternative(self):
        from repro.regex.ast import sym

        expr = block(1, ["t"], extra=sym("X"))
        assert accepts(expr, ["X"])
        assert accepts(expr, ["$", "0", "0", "0", "0", "t"])

    def test_unknown_position_class(self):
        with pytest.raises(ValueError):
            block(1, ["t"], position="weird")

    def test_empty_tile_set(self):
        with pytest.raises(ValueError):
            block(1, [])

    def test_view_expression(self):
        expr = block_view_expr(1, "t")
        assert accepts(expr, ["$", "0", "1", "0", "1", "t"])
        assert not accepts(expr, ["$", "0", "1", "0", "1", "u"])


class TestConditionDetectors:
    """Each detector matches words violating its condition and only those
    (checked on a few representative words for n=1)."""

    def blockword(self, p, c, x, h, t="t"):
        return ["$", str(p), str(c), str(x), str(h), t]

    def test_condition1_detects_bad_start(self):
        conds = counter_bad_conditions(1, ["t"])
        cond1 = conds[0]
        assert accepts(cond1, self.blockword(1, 1, 0, 0))
        assert not accepts(cond1, self.blockword(0, 1, 1, 0))

    def test_condition3_detects_carry0(self):
        conds = counter_bad_conditions(1, ["t"])
        cond3 = conds[1]  # n=1: condition (4) is vacuous, so (3) is second
        assert accepts(cond3, self.blockword(0, 0, 0, 0))
        assert not accepts(cond3, self.blockword(0, 1, 1, 0))

    def test_condition5_detects_bad_next(self):
        conds = counter_bad_conditions(1, ["t"])
        cond5 = conds[2]
        assert accepts(cond5, self.blockword(0, 1, 0, 0))  # x != p xor c
        assert not accepts(cond5, self.blockword(0, 1, 1, 0))

    def test_condition6_detects_bad_continuation(self):
        conds = counter_bad_conditions(1, ["t"])
        cond6 = conds[3]
        good = self.blockword(0, 1, 1, 0) + self.blockword(1, 1, 0, 0)
        bad = self.blockword(0, 1, 1, 0) + self.blockword(0, 1, 1, 0)
        assert accepts(cond6, bad)
        assert not accepts(cond6, good)

    def test_end_anchor_condition2_optional(self):
        with_anchor = counter_bad_conditions(1, ["t"], include_end_anchor=True)
        without = counter_bad_conditions(1, ["t"])
        assert len(with_anchor) == len(without) + 1
        cond2 = with_anchor[1]
        assert accepts(cond2, self.blockword(0, 1, 1, 0))  # last pos has a 0

    def test_highlight_conditions_shapes(self):
        conds = highlight_bad_conditions(1, ["t"])
        # order: (i), (ii), (iii), (iv), (vi), then (v)
        no_hl, one_at_ones, three, far_apart, zero_pair, differing = conds
        # (i): any unhighlighted word, at least one block
        assert accepts(no_hl, self.blockword(0, 1, 1, 0))
        assert not accepts(no_hl, [])
        assert not accepts(no_hl, self.blockword(0, 1, 1, 1))
        # (ii): single highlight at position 1^n
        assert accepts(one_at_ones, self.blockword(1, 1, 0, 1))
        assert not accepts(one_at_ones, self.blockword(0, 1, 1, 1))
        # (iii): three highlights
        word3 = sum((self.blockword(0, 1, 1, 1) for _ in range(3)), [])
        assert accepts(three, word3)
        # (v): two highlights at different positions
        diff = self.blockword(0, 1, 1, 1) + self.blockword(1, 1, 0, 1)
        assert accepts(differing, diff)
        same = self.blockword(0, 1, 1, 1) + self.blockword(0, 1, 1, 1)
        assert not accepts(differing, same)
        # (vi): two zero-position highlights with a zero between
        leak = (
            self.blockword(0, 1, 1, 1)
            + self.blockword(1, 1, 0, 0)
            + self.blockword(0, 1, 1, 0)
            + self.blockword(1, 1, 0, 0)
            + self.blockword(0, 1, 1, 1)
        )
        assert accepts(zero_pair, leak)

    def test_polynomial_sizes(self):
        # Expression sizes grow polynomially in n (the key property that
        # makes the reductions meaningful).
        sizes = []
        for n in (1, 2, 3, 4):
            total = sum(
                expr.size()
                for expr in counter_bad_conditions(n, ["t"])
                + highlight_bad_conditions(n, ["t"])
            )
            sizes.append(total)
        # growth between consecutive n stays well under cubic
        for prev, nxt in zip(sizes, sizes[1:]):
            assert nxt < prev * 8
