"""Tiling substrate: validation and the brute-force solver."""

import pytest

from repro.reductions.tiling import (
    TilingSystem,
    is_valid_tiling,
    solve_corridor_tiling,
)


def simple_system(**overrides):
    defaults = dict(
        tiles=("a", "b"),
        horizontal=frozenset({("a", "b")}),
        vertical=frozenset({("a", "a"), ("b", "b")}),
        t_start="a",
        t_final="b",
    )
    defaults.update(overrides)
    return TilingSystem(**defaults)


class TestSystemValidation:
    def test_duplicate_tiles_rejected(self):
        with pytest.raises(ValueError):
            TilingSystem(("a", "a"), frozenset(), frozenset())

    def test_unknown_tiles_in_relations(self):
        with pytest.raises(ValueError):
            TilingSystem(("a",), frozenset({("a", "z")}), frozenset())

    def test_unknown_corner(self):
        with pytest.raises(ValueError):
            TilingSystem(("a",), frozenset(), frozenset(), t_start="z")

    def test_relation_predicates(self):
        system = simple_system()
        assert system.h_ok("a", "b")
        assert not system.h_ok("b", "a")
        assert system.v_ok("a", "a")


class TestIsValidTiling:
    def test_valid_single_row(self):
        assert is_valid_tiling(simple_system(), [["a", "b"]], width=2)

    def test_valid_stacked(self):
        assert is_valid_tiling(simple_system(), [["a", "b"], ["a", "b"]], width=2)

    def test_horizontal_violation(self):
        assert not is_valid_tiling(simple_system(), [["b", "a"]], width=2)

    def test_vertical_violation(self):
        system = simple_system(vertical=frozenset({("a", "a")}))
        assert not is_valid_tiling(system, [["a", "b"], ["a", "b"]], width=2)

    def test_corner_violations(self):
        assert not is_valid_tiling(
            simple_system(t_start="b"), [["a", "b"]], width=2
        )
        assert not is_valid_tiling(
            simple_system(t_final="a"), [["a", "b"]], width=2
        )

    def test_corners_can_be_skipped(self):
        assert is_valid_tiling(
            simple_system(t_start="b"), [["a", "b"]], width=2, check_corners=False
        )

    def test_wrong_width_rejected(self):
        assert not is_valid_tiling(simple_system(), [["a"]], width=2)
        assert not is_valid_tiling(simple_system(), [], width=2)

    def test_unknown_tile_rejected(self):
        assert not is_valid_tiling(simple_system(), [["a", "z"]], width=2)


class TestSolver:
    def test_finds_single_row_solution(self):
        solution = solve_corridor_tiling(simple_system(), width=2, max_rows=3)
        assert solution == [["a", "b"]]

    def test_respects_corners(self):
        system = simple_system(t_final="a")
        assert solve_corridor_tiling(system, width=2, max_rows=4) is None

    def test_multi_row_solution(self):
        # The final tile c only occurs in the row [d, c], which cannot be
        # the first row (it does not start with a): two rows are needed.
        system = TilingSystem(
            tiles=("a", "b", "c", "d"),
            horizontal=frozenset({("a", "b"), ("d", "c")}),
            vertical=frozenset({("a", "d"), ("b", "c")}),
            t_start="a",
            t_final="c",
        )
        solution = solve_corridor_tiling(system, width=2, max_rows=3)
        assert solution == [["a", "b"], ["d", "c"]]
        assert is_valid_tiling(system, solution, width=2)

    def test_no_rows_at_all(self):
        system = TilingSystem(
            tiles=("a",), horizontal=frozenset(), vertical=frozenset()
        )
        assert solve_corridor_tiling(system, width=2, max_rows=2) is None

    def test_max_rows_bound(self):
        # Needs 2 rows, but only 1 allowed.
        system = TilingSystem(
            tiles=("a", "b", "c", "d"),
            horizontal=frozenset({("a", "b"), ("d", "c")}),
            vertical=frozenset({("a", "d"), ("b", "c")}),
            t_start="a",
            t_final="c",
        )
        assert solve_corridor_tiling(system, width=2, max_rows=1) is None
        assert solve_corridor_tiling(system, width=2, max_rows=2) is not None
