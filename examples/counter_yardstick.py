"""Theorem 3.4's yardstick: a polynomial instance with a 2^(2^n) rewriting.

Builds the counter family at n=1 and shows that the maximal rewriting of a
polynomially-sized instance is (w_C)^+ for the doubly-exponentially long
counter word w_C — the paper's lower-bound witness for the size of
rewritings.

Note: computing the rewriting runs the full double-exponential pipeline
and takes on the order of a minute at n=1.

Run with::

    python examples/counter_yardstick.py
"""

import time

from repro.core import maximal_rewriting
from repro.reductions import counter_reduction, counter_word


def main() -> None:
    n = 1
    reduction = counter_reduction(n)
    wc = counter_word(n)

    print(f"n = {n}")
    print(f"instance size |E0| = {reduction.e0.size()} AST nodes,")
    print(f"views: {len(reduction.views)} block languages")
    print(
        f"counter word w_C: {len(wc)} symbols "
        f"(= 2^{n} * 2^(2^{n}) = {reduction.word_length})"
    )
    print("w_C =", " ".join(wc))

    print("\nComputing the maximal rewriting (double-exponential pipeline)...")
    started = time.perf_counter()
    result = maximal_rewriting(reduction.e0, reduction.views)
    elapsed = time.perf_counter() - started
    print(f"done in {elapsed:.1f}s; stats: {result.stats}")

    shortest = result.shortest_word()
    print("\nShortest rewriting word length:", len(shortest))
    print("Matches w_C:", shortest == wc)
    print(
        "Lower bound 2^(2^n) =",
        2 ** (2 ** n),
        "<=",
        len(shortest),
        "(Theorem 3.4 verified)",
    )

    # Perturbing any symbol of w_C leaves the rewriting.
    broken = (wc[0],) + wc[2:]
    print("Truncated/perturbed words rejected:", not result.accepts(broken))


if __name__ == "__main__":
    main()
