"""Semi-structured web data: the introduction's travel query.

The paper opens with the regular path query

    _* . (rome + jerusalem) . _* . restaurant

over a web-like labelled graph.  This example evaluates it directly, then
rewrites it over a set of views (precomputed navigation indexes) and
compares the answers, exercising the Section 4 machinery with formulae of
a theory: ``City`` and ``Restaurant`` are predicates over the edge domain.

Run with::

    python examples/semistructured_web.py
"""

from repro.regex.ast import concat, star, sym
from repro.rpq import (
    RPQ,
    GraphDB,
    Pred,
    RPQViews,
    Theory,
    evaluate,
    find_partial_rpq_rewritings,
    rewrite_rpq,
)
from repro.rpq.formulas import TOP


def build_web() -> GraphDB:
    db = GraphDB()
    # A small web of travel pages.
    db.add_edge("start", "portal", "travel")
    db.add_edge("travel", "rome", "rome_page")
    db.add_edge("travel", "jerusalem", "jlm_page")
    db.add_edge("travel", "paris", "paris_page")
    db.add_edge("rome_page", "link", "rome_food")
    db.add_edge("rome_food", "trattoria", "review1")
    db.add_edge("jlm_page", "falafel", "review2")
    db.add_edge("paris_page", "bistro", "review3")
    db.add_edge("review1", "link", "review2")
    return db


def main() -> None:
    db = build_web()
    theory = Theory(
        domain={
            "portal", "link",
            "rome", "jerusalem", "paris",
            "trattoria", "falafel", "bistro",
        },
        predicates={
            "City": {"rome", "jerusalem", "paris"},
            "Restaurant": {"trattoria", "falafel", "bistro"},
        },
    )

    # _* . (rome + jerusalem) . _* . Restaurant
    q0 = RPQ(
        concat(
            star(sym(TOP)),
            sym("rome") + sym("jerusalem"),
            star(sym(TOP)),
            sym(Pred("Restaurant")),
        ),
        name="holy-city-restaurants",
    )
    direct = evaluate(db, q0, theory)
    print("Direct answers to", q0)
    for pair in sorted(direct):
        print("  ", pair)

    # Views: a generic city index cannot separate rome/jerusalem from
    # paris — the rewriting over it is empty.
    weak_views = RPQViews(
        {
            "vCity": RPQ(sym(Pred("City")), name="city-index"),
            "vRest": RPQ(sym(Pred("Restaurant")), name="restaurant-index"),
            "vNav": RPQ(star(sym("portal") + sym("link")), name="navigation"),
        }
    )
    weak = rewrite_rpq(q0, weak_views, theory)
    print("\nRewriting over generic indexes:", weak.regex())
    print("(empty: a City edge might be paris, which Q0 forbids)")

    # A dedicated holy-city index makes the views useful.
    views = weak_views.extended(
        {"vHoly": RPQ(sym("rome") + sym("jerusalem"), name="holy-city-index")}
    )
    result = rewrite_rpq(q0, views, theory)
    print("\nMaximal rewriting with the holy-city index:", result.regex())
    print("Exact:", result.is_exact())
    via_views = result.answer(db)
    print(f"Answers via views: {len(via_views)} of {len(direct)}")
    assert via_views == direct  # exact rewriting recovers everything

    # Section 4.3: starting from the *weak* views instead, the partial-
    # rewriting search discovers which atomic views must be added.
    solutions = find_partial_rpq_rewritings(
        q0, weak_views, theory, max_added=2, find_all_minimal=True
    )
    print("\nMinimal atomic-view extensions repairing the weak indexes:")
    for solution in solutions:
        print(
            "  add predicates",
            solution.added_predicates or "()",
            "constants",
            solution.added_constants or "()",
        )
        assert solution.result.is_exact()


if __name__ == "__main__":
    main()
