"""Quickstart: the paper's Figure 1 (Examples 2.2 and 2.3), end to end.

Rewrites ``E0 = a.(b.a+c)*`` in terms of the views
``e1 = a``, ``e2 = a.c*.b``, ``e3 = c`` and verifies exactness.

Run with::

    python examples/quickstart.py
"""

from repro import ViewSet, maximal_rewriting
from repro.automata import to_dot


def main() -> None:
    views = ViewSet({"e1": "a", "e2": "a.c*.b", "e3": "c"})
    print("Query    E0 = a.(b.a+c)*")
    for symbol in views.symbols:
        print(f"View     {symbol} = {views.re(symbol)}")

    result = maximal_rewriting("a.(b.a+c)*", views)

    print("\nMaximal rewriting:", result.regex())  # e2*.e1.e3*
    print("Exact:", result.is_exact())
    print("Shortest rewriting word:", "".join(result.shortest_word()))
    print(
        "Construction sizes: |Ad| =",
        result.ad.num_states,
        "states, rewriting DFA =",
        result.automaton.num_states,
        "states",
    )

    print("\nSome words of the rewriting (up to length 3):")
    for word in result.words(max_length=3):
        print("  ", ".".join(word) or "(empty)")

    # Example 2.3, second half: dropping the view `c` loses exactness.
    smaller = maximal_rewriting("a.(b.a+c)*", ViewSet({"e1": "a", "e2": "a.c*.b"}))
    print("\nWithout the view c the rewriting is:", smaller.regex())
    print("Exact:", smaller.is_exact())
    from repro import exactness_counterexample

    witness = exactness_counterexample(smaller)
    print("A word of E0 the views cannot express:", "".join(witness))

    print("\nGraphviz DOT of the rewriting automaton:")
    print(to_dot(result.automaton.trimmed(), name="rewriting"))


if __name__ == "__main__":
    main()
