"""Theory-aware rewriting: why Section 4 is more than Section 2.

The paper's motivating example: with a theory entailing
``forall x. A(x) -> B(x)``, the query ``Q0 = B`` has the maximal rewriting
``A`` in terms of the view ``A`` — but a symbol-level rewriting (treating
formulae as opaque letters) finds nothing.  The example also demonstrates
the preference criteria over partial rewritings.

Run with::

    python examples/theory_rewriting.py
"""

from repro.core import maximal_rewriting
from repro.regex.ast import star, sym
from repro.rpq import (
    RPQ,
    GraphDB,
    Pred,
    RPQViews,
    Theory,
    evaluate,
    find_partial_rpq_rewritings,
    rewrite_rpq,
)


def main() -> None:
    theory = Theory(
        domain={"a1", "a2", "b1"},
        predicates={"A": {"a1", "a2"}, "B": {"a1", "a2", "b1"}},
    )
    print("Theory: domain {a1, a2, b1}, A = {a1, a2}, B = {a1, a2, b1}")
    print("so T |= forall x (A(x) -> B(x))\n")

    q0 = RPQ(sym(Pred("B")), name="Q0")
    views = RPQViews({"qA": RPQ(sym(Pred("A")), name="A")})

    # Symbol-level rewriting is empty: `A` and `B` are different letters.
    symbol_level = maximal_rewriting(sym(Pred("B")), {"qA": sym(Pred("A"))})
    print("Symbol-level rewriting empty?", symbol_level.is_empty())

    # Theory-aware rewriting recovers qA.
    result = rewrite_rpq(q0, views, theory)
    print("Theory-aware rewriting:", result.regex())
    print("Exact:", result.is_exact())

    db = GraphDB([("x", "a1", "y"), ("y", "b1", "z"), ("z", "a2", "w")])
    print("\nOn the database x -a1-> y -b1-> z -a2-> w:")
    print("  direct answers:   ", sorted(evaluate(db, q0, theory)))
    print("  answers via views:", sorted(result.answer(db)))

    # Transitive-closure variant: both query and views are recursive.
    q_star = RPQ(star(sym(Pred("B"))), name="B*")
    star_result = rewrite_rpq(q_star, views, theory)
    print("\nRecursive query B* rewrites to:", star_result.regex())
    print(
        "(the first decidable recursive-query/recursive-view rewriting,",
        "per the paper's introduction)",
    )

    # Section 4.3: make the rewriting exact by adding atomic views, then
    # rank the alternatives with the preference criteria.
    solutions = find_partial_rpq_rewritings(
        q0, views, theory, find_all_minimal=True
    )
    print("\nMinimal atomic-view extensions reaching exactness:")
    for solution in solutions:
        print(
            "  add predicates",
            solution.added_predicates or "()",
            "constants",
            solution.added_constants or "()",
            "->",
            solution.result.regex(),
        )


if __name__ == "__main__":
    main()
