"""Dual rewritings: maximally contained vs minimally containing.

Section 5 of the paper names the dual of its main problem — *containing*
rewritings that return all answers and possibly more — as a research
direction.  This example computes both for the same instance and shows how
they bracket the query:

    exp(contained)  subseteq  L(E0)  subseteq  exp(containing)

so the contained rewriting yields certain answers and the containing one
a complete set of candidates to filter.

Run with::

    python examples/dual_rewritings.py
"""

from repro import ViewSet, maximal_rewriting
from repro.core import existential_rewriting


def main() -> None:
    e0 = "a.b.b*"
    views = ViewSet({"e1": "a.b", "e2": "b", "e3": "b.b"})
    print(f"Query E0 = {e0}")
    for symbol in views.symbols:
        print(f"View  {symbol} = {views.re(symbol)}")

    contained = maximal_rewriting(e0, views)
    print("\nMaximally contained rewriting (certain answers):")
    print("  ", contained.regex())
    print("   exact:", contained.is_exact())

    containing = existential_rewriting(e0, views)
    print("\nExistential rewriting (candidate answers):")
    print("  ", containing.regex())
    print("   covers E0:", containing.covers())

    print("\nWord-level comparison (up to length 2):")
    print(f"  {'word':<12} {'contained':<10} containing")
    for length in range(3):
        from itertools import product

        for word in product(views.symbols, repeat=length):
            in_contained = contained.accepts(word)
            in_containing = containing.accepts(word)
            if in_contained or in_containing:
                rendered = ".".join(word) or "(empty)"
                print(f"  {rendered:<12} {str(in_contained):<10} {in_containing}")
            # sanity: contained words whose expansion is nonempty must be
            # containing words too
            if in_contained and not in_containing:
                raise AssertionError(word)

    # A case where no containing rewriting exists at all.
    poor_views = ViewSet({"e1": "a"})
    orphan = existential_rewriting("a+d", poor_views)
    print("\nWith views {a} for the query a+d:")
    print("   covers:", orphan.covers())
    print("   unreachable query word:", orphan.coverage_counterexample())


if __name__ == "__main__":
    main()
