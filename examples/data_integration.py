"""Data integration: answering a query using only materialized views.

A mediator integrates two bibliography sources.  The global schema is an
edge-labelled graph (authors, papers, venues, citations); the sources
export *views* — regular path queries they can answer — and the mediator
must rewrite the user's query over the view alphabet (the paper's
data-integration motivation for view-based rewriting).

Run with::

    python examples/data_integration.py
"""

import random

from repro.rpq import (
    GraphDB,
    RPQViews,
    Theory,
    evaluate,
    rewrite_rpq,
)


def build_bibliography(rng: random.Random) -> GraphDB:
    """A synthetic bibliography graph: authors write papers, papers cite
    papers and appear in venues."""
    db = GraphDB()
    authors = [f"author{i}" for i in range(6)]
    papers = [f"paper{i}" for i in range(12)]
    venues = ["pods", "vldb", "sigmod"]
    for i, paper in enumerate(papers):
        db.add_edge(rng.choice(authors), "writes", paper)
        if rng.random() < 0.6:
            db.add_edge(rng.choice(authors), "writes", paper)
        db.add_edge(paper, "in", rng.choice(venues))
    for paper in papers:
        for _ in range(rng.randint(0, 3)):
            cited = rng.choice(papers)
            if cited != paper:
                db.add_edge(paper, "cites", cited)
    return db


def main() -> None:
    rng = random.Random(42)
    db = build_bibliography(rng)
    theory = Theory.trivial({"writes", "cites", "in"})
    print(f"Global database: {db}")

    # The user's query: authors connected to a venue through a paper that
    # reaches it via any chain of citations.
    q0 = "writes.cites*.in"

    # Source 1 exports author-paper pairs; source 2 exports one-step
    # citations and paper-venue placement.
    views = RPQViews(
        {
            "src1_writes": "writes",
            "src2_cites": "cites",
            "src2_in": "in",
        }
    )

    result = rewrite_rpq(q0, views, theory)
    print(f"\nQuery: {q0}")
    print("Rewriting over the sources:", result.regex())
    print("Exact:", result.is_exact())

    # The mediator evaluates the rewriting over materialized extensions
    # only — it never touches the global graph.
    extensions = views.materialize(db, theory)
    for name, pairs in extensions.items():
        print(f"  extension of {name}: {len(pairs)} pairs")
    via_views = result.answer(db, extensions=extensions)
    direct = evaluate(db, q0, theory)
    print(f"\nAnswers via views: {len(via_views)}; direct: {len(direct)}")
    assert via_views == direct, "exact rewriting must recover all answers"

    # Now the sources are weaker: only two-step citation chains exported.
    weak_views = RPQViews(
        {
            "src1_writes": "writes",
            "src2_cites2": "cites.cites",
            "src2_in": "in",
        }
    )
    weak = rewrite_rpq(q0, weak_views, theory)
    print("\nWith only two-step citation views the rewriting is:")
    print("  ", weak.regex())
    print("Exact:", weak.is_exact())
    weak_answers = weak.answer(db)
    print(
        f"Sound but partial answers: {len(weak_answers)} of {len(direct)} "
        "(only even citation depths are expressible)"
    )
    assert weak_answers <= direct


if __name__ == "__main__":
    main()
