"""The serving layer end to end: store, plan cache, query session.

The data-integration scenario of Section 4 run as a long-lived service:
view extensions arrive incrementally, compiled rewrite plans persist
across processes, and queries are answered at the store's current
version.  Run with ``PYTHONPATH=src python examples/answering_service.py``.
"""

import tempfile

from repro.rpq import RPQViews, Theory
from repro.service import MaterializedViewStore, QuerySession, RewritePlanCache

theory = Theory.trivial({"flight", "train", "bus"})
views = RPQViews(
    {
        "vF": "flight",
        "vT": "train",
        "vFT": "flight.train",
        "vLoc": "bus*",
    }
)

# Extensions as delivered by the sources — the service never sees a base DB.
store = MaterializedViewStore(
    {
        "vF": [("oslo", "berlin"), ("berlin", "rome")],
        "vT": [("berlin", "prague"), ("prague", "vienna")],
        "vFT": [("oslo", "prague")],
        "vLoc": [("vienna", "graz"), ("rome", "naples")],
    }
)

plan_dir = tempfile.mkdtemp(prefix="repro-plans-")
session = QuerySession(store, views, theory, plans=RewritePlanCache(plan_dir))

QUERY = "flight.train*.bus*"
print(f"query: {QUERY}")
print("exact rewriting:", session.is_exact(QUERY))
for pair in sorted(session.answer(QUERY)):
    print("  answer:", pair)

print("\nreachable from oslo:", sorted(session.answer_from(QUERY, "oslo")))
print("oslo->graz?", session.answer_pair(QUERY, "oslo", "graz"))

# Incremental update: a new train route opens; plans survive, answers refresh.
store.add("vT", "vienna", "budapest")
print("\nafter adding vienna->budapest by train:")
print("reachable from oslo:", sorted(session.answer_from(QUERY, "oslo")))
print("plans built:", session.plans.stats["built"], "(unchanged by the update)")

# A second session (think: another worker process) reuses the disk plans.
other = QuerySession(store, views, theory, plans=RewritePlanCache(plan_dir))
assert other.answer(QUERY) == session.answer(QUERY)
print("\nsecond session:", other.plans.stats, "- plans loaded, none rebuilt")
